"""``BCService``: betweenness centrality (and friends) as a service.

One-shot CLI/bench runs rebuild the simulated machine, redistribute the
graph, and compute from scratch on every invocation.  The service instead
*pins* a distributed graph on a warm :class:`~repro.machine.Machine` —
replication caches and elastic redundancy stay armed between requests —
and answers a concurrent query mix:

* ``bc`` — exact betweenness centrality of every vertex;
* ``bc_source`` — one source's dependency contribution (the unit the
  coalescer turns into shared MFBC sweeps);
* ``approx_bc`` — fixed-pivot sampled BC (``samples``/``seed`` parameters
  expose the latency/accuracy knob per request);
* ``adaptive_bc`` — adaptive-sampling BC with a provable (ε, δ) error
  bound (:func:`repro.core.approx.adaptive_bc`); concurrent requests
  coalesce on their ``(epsilon, delta, seed)`` accuracy key, so identical
  targets share one sampling run and its cache entry;
* ``bfs`` / ``sssp`` / ``widest`` — per-source kernels from
  :mod:`repro.apps`, coalesced the same way;
* ``connected`` / ``triangles`` — whole-graph kernels, answered from the
  version cache after the first computation.

Execution is single-flight: one dispatcher thread drains the coalescer and
runs each batch on the machine, so the ledger stays a coherent single
timeline while any number of client threads submit/poll/cancel.  Faults
compose with serving: a :class:`~repro.faults.RankFailure` mid-batch takes
the existing elastic-recovery path (grid shrink + block repair) and the
batch transparently re-executes on the survivors; per-query ``deadline``
budgets reuse ``Machine(deadline=)`` — the strictest member of a batch
arms the machine's modeled-time guard, and on expiry only the blown
queries fail while the rest retry.

Overload composes with both (:mod:`repro.serve.overload`): every
submission passes a cost-aware :class:`~repro.serve.overload.AdmissionController`
(queue bounds in queries *and* modeled seconds, per-client token buckets,
deadline-infeasibility rejection), watermark pressure arms brownout
(stale cache reads, exact ``bc`` downgraded to fixed-pivot ``approx_bc``
or the (ε, δ)-bounded ``adaptive_bc`` per
:attr:`~repro.serve.overload.OverloadConfig.brownout_algorithm`, with
``degraded: true``) and then load shedding
(:class:`~repro.serve.overload.AdmissionError` → HTTP 503 + Retry-After),
a :class:`~repro.serve.overload.CircuitBreaker` fails batches fast during
fault-recovery storms, and a watchdog restarts a dead dispatcher while
:meth:`BCService.health` reports the truthful
``ok``/``degraded``/``overloaded``/``draining`` state.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.mfbc import mfbc, mfbc_per_source
from repro.faults.plan import DeadlineExceeded, FaultError, RankFailure
from repro.graphs.graph import Graph
from repro.obs import api as obs
from repro.serve.cache import ScoreCache, cache_key
from repro.serve.coalescer import Coalescer, Query, QueryState
from repro.serve.overload import (
    AdmissionController,
    AdmissionError,
    CircuitBreaker,
    CircuitOpen,
    CostEstimator,
    OverloadConfig,
    ServiceState,
)

if TYPE_CHECKING:
    from repro.machine.machine import Machine

__all__ = ["BCService", "QueryError", "ALGORITHMS", "SOURCE_ALGORITHMS"]

#: queries that carry a ``source`` parameter and coalesce into shared sweeps
SOURCE_ALGORITHMS = frozenset({"bc_source", "bfs", "sssp", "widest"})
#: whole-graph queries (no source); identical concurrent requests dedupe
GRAPH_ALGORITHMS = frozenset(
    {"bc", "approx_bc", "adaptive_bc", "connected", "triangles"}
)
ALGORITHMS = SOURCE_ALGORITHMS | GRAPH_ALGORITHMS


class QueryError(RuntimeError):
    """Raised by :meth:`BCService.result` when the query did not succeed."""

    def __init__(self, query_id: str, state: str, message: str) -> None:
        super().__init__(f"query {query_id} {state}: {message}")
        self.query_id = query_id
        self.state = state


class BCService:
    """A persistent query service over one pinned distributed graph.

    Parameters
    ----------
    graph:
        The graph to serve.  Replaceable at runtime via
        :meth:`update_graph`, which bumps the graph version and invalidates
        the score cache.
    machine:
        A pre-built :class:`~repro.machine.Machine` (keyword-only).  When
        None, one is built from ``p`` / ``executor`` / ``faults`` /
        ``elastic`` / ``deadline``.
    p, policy, check, executor, faults, elastic, deadline, kernel:
        Forwarded to the machine / engine exactly as the CLI does.
    batch_window:
        Wall-seconds the dispatcher lingers after the first queued query so
        concurrent submitters coalesce into the same sweep (0 disables).
    max_batch:
        Maximum sweep width ``k`` — the §5.3 time/storage knob applied to
        the query mix.
    cache_capacity:
        LRU capacity of the versioned score cache.
    retries:
        Batch re-executions allowed per injected non-rank fault (rank
        failures take the elastic path first, which never burns retries).
    overload:
        An :class:`~repro.serve.overload.OverloadConfig` tuning admission
        bounds, brownout/shed watermarks, the circuit breaker, and the
        watchdog.  The defaults admit generously (1024 queued queries, no
        modeled-seconds bound, no rate limit) so light traffic never sees
        the machinery; production configs tighten them (see
        ``docs/serving.md``).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        machine: "Machine | None" = None,
        p: int = 4,
        policy=None,
        check=None,
        executor=None,
        faults=None,
        elastic=None,
        deadline: float | None = None,
        kernel: str | None = None,
        memory_words: int | None = None,
        spill_dir: str | None = None,
        batch_window: float = 0.002,
        max_batch: int = 64,
        cache_capacity: int = 4096,
        retries: int = 2,
        overload: OverloadConfig | None = None,
    ) -> None:
        # deferred imports: repro.dist pulls in the full engine stack
        from repro.dist.engine import DistributedEngine
        from repro.machine.machine import Machine

        if machine is None:
            machine = Machine(
                p,
                executor=executor,
                faults=faults,
                elastic=elastic,
                deadline=deadline,
                kernel=kernel,
                memory_words=memory_words,
                spill_dir=spill_dir,
            )
        self.machine = machine
        self.engine = DistributedEngine(machine, policy=policy, check=check)
        self.graph = graph
        self.graph_version = 0
        self.retries = int(retries)
        self.cache = ScoreCache(capacity=cache_capacity)
        self.coalescer = Coalescer(max_batch=max_batch, window=batch_window)
        self.overload = overload or OverloadConfig()
        self.admission = AdmissionController(self.overload)
        self.breaker = CircuitBreaker(
            self.overload.breaker_threshold, self.overload.breaker_reset
        )
        self.estimator = CostEstimator(machine, graph)
        self._queries: dict[str, Query] = {}
        self._registry_lock = threading.Lock()
        #: serializes batch execution against graph mutation
        self._exec_lock = threading.Lock()
        self._pinned: dict[str, object] = {}
        self._counters: dict[str, float] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "expired": 0,
            "cancelled": 0,
            "batches": 0,
            "swept_sources": 0,
            "recoveries": 0,
            "retries": 0,
            "shed": 0,
            "degraded": 0,
            "stale": 0,
            "infeasible": 0,
            "breaker_fastfail": 0,
            "dispatcher_restarts": 0,
        }
        self._closed = False
        self._draining = False
        self._stalled = False
        self._inflight = 0
        self._heartbeat = time.monotonic()
        self._stop = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="bcservice-dispatch", daemon=True
        )
        self._dispatcher.start()
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="bcservice-watchdog", daemon=True
        )
        self._watchdog.start()

    # -- client API ----------------------------------------------------------

    def submit(
        self,
        algorithm: str,
        *,
        source: int | None = None,
        samples: int | None = None,
        seed: int = 0,
        epsilon: float | None = None,
        delta: float | None = None,
        deadline: float | None = None,
        client: str | None = None,
    ) -> str:
        """Enqueue a query; returns its id for :meth:`poll` / :meth:`result`.

        ``deadline`` is a modeled-seconds budget for the query's sweep
        (measured from when its batch starts executing on the machine).
        A cache hit at the current graph version completes immediately —
        without touching the machine's ledger — and bypasses admission
        entirely.  A query whose *a-priori* modeled cost already exceeds
        its deadline is finished ``expired`` at submit time and never
        burns a sweep.  Under overload the submission may raise
        :class:`~repro.serve.overload.AdmissionError` (shed) instead of
        queueing; ``client`` names the rate-limit principal when
        per-client token buckets are configured.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        params = self._canonical_params(
            algorithm,
            source=source,
            samples=samples,
            seed=seed,
            epsilon=epsilon,
            delta=delta,
        )
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        cfg = self.overload
        version = self.graph_version
        requested = algorithm
        degraded = False
        if self.admission.brownout_active and algorithm == "bc":
            # brownout: answer exact-BC traffic with cheaper sampling
            # (van der Grinten & Meyerhenke's degrade-don't-fail); the
            # config picks fixed-pivot or the (ε, δ)-bounded adaptive
            # sampler as the downgrade target
            if cfg.brownout_algorithm == "adaptive_bc":
                algorithm = "adaptive_bc"
                params = {
                    "epsilon": float(cfg.brownout_epsilon),
                    "delta": float(cfg.brownout_delta),
                    "seed": cfg.brownout_seed,
                }
            else:
                algorithm = "approx_bc"
                params = {
                    "samples": min(cfg.brownout_samples, self.graph.n),
                    "seed": cfg.brownout_seed,
                }
            degraded = True
        cached = self.cache.get(cache_key(version, algorithm, params))
        if cached is not None:
            return self._finish_fast(
                algorithm,
                params,
                requested,
                result=cached,
                version=version,
                degraded=degraded,
                cache_hit=True,
            )
        if self.admission.brownout_active and cfg.stale_depth:
            # brownout: a stale answer beats a shed one — look back through
            # the retained generations before charging the queue
            for v in range(version - 1, max(version - 1 - cfg.stale_depth, -1), -1):
                hit = self.cache.peek(cache_key(v, algorithm, params))
                if hit is not None:
                    if obs.enabled():
                        obs.count(
                            "serve.overload.stale", 1.0, algorithm=requested
                        )
                    with self._registry_lock:
                        self._counters["stale"] += 1
                    return self._finish_fast(
                        algorithm,
                        params,
                        requested,
                        result=hit,
                        version=v,
                        degraded=True,
                        cache_hit=True,
                        stale_version=v,
                    )
        estimate = self.estimator.estimate(algorithm, params)
        memory_estimate = self.estimator.estimate_memory_words(algorithm, params)
        budget = self.machine.memory_words
        if budget is not None:
            floor = self.estimator.estimate_memory_words(
                algorithm, params, width=1
            )
            if floor > budget:
                # not even a width-1 sweep fits the per-rank budget: the
                # memory ladder has nothing left to shrink, so fail fast
                if obs.enabled():
                    obs.count(
                        "serve.overload.infeasible", 1.0, algorithm=requested
                    )
                with self._registry_lock:
                    self._counters["infeasible"] += 1
                query = Query(
                    algorithm=algorithm,
                    params=params,
                    deadline=deadline,
                    degraded=degraded,
                    requested_algorithm=requested if degraded else None,
                    client=client,
                )
                with self._registry_lock:
                    self._queries[query.id] = query
                    self._counters["submitted"] += 1
                self._fail(
                    query,
                    QueryState.EXPIRED,
                    f"memory infeasible: modeled peak {floor:.3e} words at "
                    f"batch width 1 exceeds the {budget:.3e}-word per-rank "
                    f"budget before queueing",
                )
                return query.id
        if deadline is not None and estimate > deadline:
            if obs.enabled():
                obs.count("serve.overload.infeasible", 1.0, algorithm=requested)
            with self._registry_lock:
                self._counters["infeasible"] += 1
            query = Query(
                algorithm=algorithm,
                params=params,
                deadline=deadline,
                degraded=degraded,
                requested_algorithm=requested if degraded else None,
                client=client,
            )
            with self._registry_lock:
                self._queries[query.id] = query
                self._counters["submitted"] += 1
            self._fail(
                query,
                QueryState.EXPIRED,
                f"deadline infeasible: modeled cost estimate {estimate:.3e}s "
                f"exceeds the {deadline:.3e}s budget before queueing",
            )
            return query.id
        if self._draining:
            self._count_shed("draining")
            raise AdmissionError(
                "draining", "service is draining; not accepting new work", None
            )
        breaker_wait = self.breaker.retry_after()
        if breaker_wait > 0:
            self._count_shed("circuit_open")
            raise CircuitOpen(
                f"fault circuit open; retry in {breaker_wait:.2f}s", breaker_wait
            )
        try:
            self.admission.admit(estimate, client, memory_words=memory_estimate)
        except AdmissionError as exc:
            self._count_shed(exc.reason)
            raise
        query = Query(
            algorithm=algorithm,
            params=params,
            deadline=deadline,
            cost_estimate=estimate,
            cost_memory_words=memory_estimate,
            degraded=degraded,
            requested_algorithm=requested if degraded else None,
            client=client,
        )
        with self._registry_lock:
            self._queries[query.id] = query
            self._counters["submitted"] += 1
        self.coalescer.put(query)
        return query.id

    def poll(self, query_id: str) -> dict:
        """Status snapshot: state plus result/error once terminal."""
        q = self._get(query_id)
        out = {
            "id": q.id,
            "algorithm": q.algorithm,
            "params": dict(q.params),
            "state": q.state.value,
            "cache_hit": q.cache_hit,
            "degraded": q.degraded,
            "attempts": q.attempts,
            "batch_size": q.batch_size,
            "graph_version": q.graph_version,
            "queue_seconds": q.queue_seconds,
            "compute_seconds": q.compute_seconds,
        }
        if q.requested_algorithm is not None:
            out["requested_algorithm"] = q.requested_algorithm
        if q.stale_version is not None:
            out["stale_version"] = q.stale_version
        if q.state is QueryState.DONE:
            out["result"] = q.result
        elif q.state.terminal:
            out["error"] = q.error
        return out

    def result(self, query_id: str, timeout: float | None = None):
        """Block until the query finishes; return its payload or raise."""
        q = self._get(query_id)
        if not q.done.wait(timeout):
            raise TimeoutError(f"query {query_id} still {q.state.value}")
        if q.state is QueryState.DONE:
            return q.result
        raise QueryError(q.id, q.state.value, q.error or "no detail")

    def cancel(self, query_id: str) -> bool:
        """Withdraw a queued query; running/terminal queries are not touched."""
        q = self._get(query_id)
        if q.state is not QueryState.QUEUED:
            return False
        q.state = QueryState.CANCELLED
        self.coalescer.remove(q)
        self._release_admission(q)
        q.finish(QueryState.CANCELLED, error="cancelled")
        with self._registry_lock:
            self._counters["cancelled"] += 1
        return True

    def update_graph(self, graph: Graph) -> int:
        """Replace the served graph; returns the new graph version.

        Queued queries are answered against the new version (queries bind
        to the version current when their batch executes); the pinned
        adjacency layouts are rebuilt lazily on the next sweep.  The score
        cache retains the newest ``overload.stale_depth`` older generations
        for brownout stale serving and purges everything beyond them.
        """
        with self._exec_lock:
            self.graph = graph
            self.graph_version += 1
            self._pinned.clear()
            self.engine.release_invariants()
            self.estimator.rebind(graph)
            self.cache.invalidate(
                before_version=self.graph_version - self.overload.stale_depth
            )
            if obs.enabled():
                obs.count("serve.graph_updates", 1.0)
            return self.graph_version

    def health(self) -> dict:
        """The truthful health model behind ``GET /v1/healthz``.

        States: ``ok`` (admitting, exact answers) → ``degraded`` (brownout
        armed or fault circuit open; degraded answers flagged) →
        ``overloaded`` (shedding new work, or dispatcher stalled) →
        ``draining`` (close in progress) — plus ``dead`` when the
        dispatcher thread died and the watchdog has not yet revived it.
        ``live`` is True for ``ok``/``degraded`` only; the HTTP endpoint
        maps not-live states to 503.
        """
        snap = self.admission.snapshot()
        breaker = self.breaker.state
        if self._closed or self._draining:
            state = ServiceState.DRAINING
        elif not self._dispatcher.is_alive():
            state = ServiceState.DEAD
        elif snap["shedding"] or self._stalled:
            state = ServiceState.OVERLOADED
        elif snap["brownout"] or breaker.value != "closed":
            state = ServiceState.DEGRADED
        else:
            state = ServiceState.OK
        return {
            "state": state.value,
            "live": state.live,
            "graph_version": self.graph_version,
            "queued": snap["queued_count"],
            "queued_seconds": snap["queued_seconds"],
            "pressure": snap["pressure"],
            "brownout": snap["brownout"],
            "shedding": snap["shedding"],
            "breaker": breaker.value,
            "dispatcher_alive": self._dispatcher.is_alive(),
        }

    def stats(self) -> dict:
        """Service counters + cache stats + coalescing factor."""
        with self._registry_lock:
            counters = dict(self._counters)
        batches = counters["batches"]
        counters["coalescing_factor"] = (
            counters["swept_sources"] / batches if batches else 0.0
        )
        return {
            "graph_version": self.graph_version,
            "queued": len(self.coalescer),
            "p": self.machine.p,
            "health": self.health()["state"],
            **counters,
            "admission": self.admission.snapshot(),
            "breaker": self.breaker.state.value,
            "cache": self.cache.stats(),
        }

    def close(self, drain_timeout: float | None = 10.0) -> None:
        """Drain queued work, stop the dispatcher, and release the machine.

        While draining, :meth:`health` reports ``draining`` and new
        submissions are rejected with ``AdmissionError("draining")``.
        Queued work is given ``drain_timeout`` wall seconds to finish
        (None waits indefinitely); whatever remains is finished
        ``cancelled`` with a drain message.  Idempotent.
        """
        if self._closed:
            return
        self._draining = True
        deadline = (
            None if drain_timeout is None else time.monotonic() + drain_timeout
        )
        while len(self.coalescer) or self._inflight:
            if deadline is not None and time.monotonic() >= deadline:
                break
            if not self._dispatcher.is_alive() and not len(self.coalescer):
                break
            time.sleep(0.01)
        self._closed = True
        self._stop.set()
        self.coalescer.close()
        for q in self.coalescer.drain():
            self._release_admission(q)
            if not q.state.terminal:
                q.finish(
                    QueryState.CANCELLED,
                    error="service draining: query abandoned at drain timeout",
                )
                with self._registry_lock:
                    self._counters["cancelled"] += 1
        self._dispatcher.join(5.0)
        self._watchdog.join(5.0)
        self.machine.executor.close()

    def __enter__(self) -> "BCService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            self._heartbeat = time.monotonic()
            batch = self.coalescer.take(timeout=0.05)
            if batch is None:
                if self._closed and not len(self.coalescer):
                    return
                continue
            with self._registry_lock:
                self._inflight += 1
            try:
                self._execute(batch)
            except Exception as exc:  # defensive: never kill the dispatcher
                for q in batch:
                    if not q.state.terminal:
                        self._fail(q, QueryState.FAILED, f"{type(exc).__name__}: {exc}")
            finally:
                with self._registry_lock:
                    self._inflight -= 1

    def _watchdog_loop(self) -> None:
        """Supervise the dispatcher: restart it dead, flag it stalled."""
        while not self._stop.wait(self.overload.watchdog_interval):
            if self._closed:
                return
            if not self._dispatcher.is_alive():
                with self._registry_lock:
                    self._counters["dispatcher_restarts"] += 1
                if obs.enabled():
                    obs.count("serve.overload.dispatcher_restart", 1.0)
                self._heartbeat = time.monotonic()
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name="bcservice-dispatch",
                    daemon=True,
                )
                self._dispatcher.start()
                continue
            stalled = (
                len(self.coalescer) > 0
                and time.monotonic() - self._heartbeat > self.overload.stall_timeout
            )
            if stalled and not self._stalled and obs.enabled():
                obs.count("serve.overload.dispatcher_stall", 1.0)
            self._stalled = stalled

    def _execute(self, batch: list[Query]) -> None:
        with self._exec_lock:
            for q in batch:
                self._release_admission(q)
            version = self.graph_version
            algorithm = batch[0].algorithm
            now = _wall()
            batch = [q for q in batch if not q.state.terminal]  # late cancels
            if not batch:
                return
            for q in batch:
                q.state = QueryState.RUNNING
                q.queue_seconds = now - q.submitted_wall
            # re-check the cache: an earlier batch may have answered this key
            remaining: list[Query] = []
            for q in batch:
                key = cache_key(version, algorithm, q.params)
                hit = self.cache.peek(key)
                if hit is not None:
                    q.cache_hit = True
                    self._complete(q, hit, version, batch_size=0)
                else:
                    remaining.append(q)
            if not remaining:
                return
            if not self.breaker.allow():
                wait = self.breaker.retry_after()
                with self._registry_lock:
                    self._counters["breaker_fastfail"] += len(remaining)
                if obs.enabled():
                    obs.count(
                        "serve.overload.breaker_fastfail",
                        float(len(remaining)),
                        algorithm=algorithm,
                    )
                for q in remaining:
                    self._fail(
                        q,
                        QueryState.FAILED,
                        "circuit open after repeated fault-recovery failures; "
                        f"retry in {wait:.2f}s",
                    )
                return
            self._execute_live(algorithm, remaining, version)

    def _execute_live(
        self, algorithm: str, queries: list[Query], version: int
    ) -> None:
        """Run one sweep for ``queries`` (all sharing a coalesce key)."""
        machine = self.machine
        saved_deadline = machine.deadline
        budgets = [q.deadline for q in queries if q.deadline is not None]
        start_modeled = machine.ledger.critical_time()
        if budgets:
            batch_budget = start_modeled + min(budgets)
            machine.deadline = (
                batch_budget
                if saved_deadline is None
                else min(saved_deadline, batch_budget)
            )
        for q in queries:
            q.attempts += 1
        t0 = _wall()
        try:
            with obs.span(
                "serve.batch",
                cat="serve",
                algorithm=algorithm,
                size=len(queries),
                version=version,
            ) as sp:
                results = self._compute(algorithm, queries, version)
                modeled_cost = machine.ledger.critical_time() - start_modeled
                if obs.enabled():
                    sp.set(modeled_cost=modeled_cost)
                    obs.count("serve.batches", 1.0, algorithm=algorithm)
                    obs.observe(
                        "serve.batch_size", float(len(queries)), algorithm=algorithm
                    )
        except DeadlineExceeded:
            self.breaker.record_success()  # the machine itself is healthy
            elapsed = machine.ledger.critical_time() - start_modeled
            expired = [
                q for q in queries if q.deadline is not None and q.deadline <= elapsed
            ]
            if not expired:  # the machine's own global deadline tripped
                for q in queries:
                    self._fail(q, QueryState.EXPIRED, "machine deadline exceeded")
                return
            survivors = [q for q in queries if q not in expired]
            for q in expired:
                self._fail(
                    q,
                    QueryState.EXPIRED,
                    f"deadline {q.deadline}s modeled exceeded ({elapsed:.3e}s elapsed)",
                )
            if survivors:
                with self._registry_lock:
                    self._counters["retries"] += 1
                self._requeue(survivors)
            return
        except FaultError as exc:
            self._handle_fault(queries, exc)
            return
        finally:
            machine.deadline = saved_deadline
        compute = _wall() - t0
        self.breaker.record_success()
        self.estimator.observe(
            algorithm, self._batch_units(algorithm, queries), modeled_cost
        )
        self.admission.observe_drain(len(queries), compute)
        with self._registry_lock:
            self._counters["batches"] += 1
            self._counters["swept_sources"] += len(queries)
        for q in queries:
            q.compute_seconds = compute
            payload = results[q.id]
            self.cache.put(cache_key(version, algorithm, q.params), payload)
            self._complete(q, payload, version, batch_size=len(queries))

    def _handle_fault(self, queries: list[Query], exc: FaultError) -> None:
        """Recover from an injected fault and transparently retry the batch."""
        self.breaker.record_failure()
        recovered = False
        if (
            isinstance(exc, RankFailure)
            and getattr(self.machine, "elastic", None) is not None
        ):
            from repro.elastic.recovery import RecoveryError

            try:
                self.engine.recover_from(exc)
                recovered = True
                with self._registry_lock:
                    self._counters["recoveries"] += 1
                if obs.enabled():
                    obs.count("serve.recoveries", 1.0, mode="elastic")
            except RecoveryError:
                recovered = False
        if not recovered:
            # plain retry ladder: reset transient engine state, bounded budget
            max_attempts = self.retries + 1
            if any(q.attempts >= max_attempts for q in queries):
                for q in queries:
                    self._fail(
                        q,
                        QueryState.FAILED,
                        f"{type(exc).__name__} after {q.attempts} attempts",
                    )
                return
            recover = getattr(self.engine, "recover", None)
            if recover is not None:
                recover()
            with self._registry_lock:
                self._counters["retries"] += 1
        # requeue: elastic recovery never burns retry budget (each success
        # strictly shrinks p, so storms terminate — same contract as mfbc)
        if recovered:
            for q in queries:
                q.attempts -= 1
        self._requeue(queries)

    def _requeue(self, queries: list[Query]) -> None:
        """Putback survivors at the queue front, re-charging admission."""
        for q in queries:
            q.state = QueryState.QUEUED
            self.admission.readmit(
                q.cost_estimate, memory_words=q.cost_memory_words
            )
            q.admission_released = False
        self.coalescer.putback(queries)

    # -- kernels -------------------------------------------------------------

    def _compute(
        self, algorithm: str, queries: list[Query], version: int
    ) -> dict[str, object]:
        """One sweep answering every query; returns payloads by query id."""
        graph = self.graph
        engine = self.engine
        if algorithm in SOURCE_ALGORITHMS:
            # dedupe repeated sources within the batch: one sweep column each
            sources = sorted({int(q.params["source"]) for q in queries})
            order = {s: i for i, s in enumerate(sources)}
            src = np.asarray(sources, dtype=np.int64)
            if algorithm == "bc_source":
                rows = mfbc_per_source(
                    graph, src, engine=engine, adj=self._pin("weighted")
                )
            elif algorithm == "bfs":
                from repro.apps import bfs_levels

                rows = bfs_levels(graph, src, engine=engine, adj=self._pin("hops"))
            elif algorithm == "sssp":
                from repro.apps import sssp_distances

                rows = sssp_distances(
                    graph, src, engine=engine, adj=self._pin("weighted")
                )
            else:  # widest
                from repro.apps import widest_path_widths

                rows = widest_path_widths(
                    graph, src, engine=engine, adj=self._pin("weighted")
                )
            return {
                q.id: rows[order[int(q.params["source"])]].copy() for q in queries
            }
        if algorithm == "bc":
            res = mfbc(graph, engine=engine, retries=0)
            payload = res.scores
        elif algorithm == "approx_bc":
            from repro.core.approx import approximate_bc

            params = queries[0].params
            payload = approximate_bc(
                graph,
                int(params["samples"]),
                seed=int(params["seed"]),
                engine=engine,
            )
        elif algorithm == "adaptive_bc":
            from repro.core.approx import adaptive_bc

            params = queries[0].params
            # raw λ-scale scores: a drop-in for clients expecting ``bc``
            # arrays (brownout downgrades swap algorithms transparently)
            payload = adaptive_bc(
                graph,
                epsilon=float(params["epsilon"]),
                delta=float(params["delta"]),
                seed=int(params["seed"]),
                engine=engine,
            ).scores
        elif algorithm == "connected":
            from repro.apps import connected_components

            payload = connected_components(graph, engine=engine)
        else:  # triangles
            payload = self._triangles()
        return {q.id: payload for q in queries}

    def _triangles(self):
        from repro.apps import triangle_count

        return triangle_count(self.graph, engine=self.engine)

    def _batch_units(self, algorithm: str, queries: list[Query]) -> float:
        """Source-sweep equivalents a batch charged (estimator feedback)."""
        if algorithm in SOURCE_ALGORITHMS:
            return float(len({int(q.params["source"]) for q in queries}))
        return self.estimator.units(algorithm, queries[0].params)

    def _pin(self, flavor: str):
        """The pinned engine adjacency for this graph version (built once).

        ``"weighted"`` is the tropical adjacency MFBC/SSSP/widest multiply
        against; ``"hops"`` is the unweighted variant BFS needs.  Pinning
        registers the matrix as loop-invariant, so the selector amortizes
        its replication and elastic redundancy stays armed across queries.
        """
        mat = self._pinned.get(flavor)
        if mat is None:
            if flavor == "hops" and self.graph.weighted:
                mat = self.engine.adjacency(self.graph.unweighted())
            else:
                mat = self.engine.adjacency(self.graph)
            self._pinned[flavor] = mat
            if flavor == "hops" and not self.graph.weighted:
                # unweighted graph: the tropical and hop adjacencies coincide
                self._pinned["weighted"] = mat
        return mat

    # -- bookkeeping ---------------------------------------------------------

    def _canonical_params(
        self,
        algorithm: str,
        *,
        source: int | None,
        samples: int | None,
        seed: int,
        epsilon: float | None = None,
        delta: float | None = None,
    ) -> dict:
        from repro.core.approx import (
            normalize_seed,
            validate_epsilon_delta,
            validate_sample_count,
        )

        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{sorted(ALGORITHMS)}"
            )
        if algorithm in SOURCE_ALGORITHMS:
            if source is None:
                raise ValueError(f"{algorithm} requires a source vertex")
            if not 0 <= int(source) < self.graph.n:
                raise ValueError(
                    f"source {source} out of range [0, {self.graph.n})"
                )
            return {"source": int(source)}
        if source is not None:
            raise ValueError(f"{algorithm} does not take a source")
        if algorithm == "approx_bc":
            if samples is None:
                raise ValueError("approx_bc requires samples")
            count = validate_sample_count(samples, self.graph.n, name="samples")
            return {"samples": count, "seed": normalize_seed(seed)}
        if algorithm == "adaptive_bc":
            eps, dlt = validate_epsilon_delta(
                0.1 if epsilon is None else epsilon,
                0.1 if delta is None else delta,
            )
            return {"epsilon": eps, "delta": dlt, "seed": normalize_seed(seed)}
        return {}

    def _get(self, query_id: str) -> Query:
        with self._registry_lock:
            q = self._queries.get(query_id)
        if q is None:
            raise KeyError(f"unknown query id {query_id!r}")
        return q

    def _finish_fast(
        self,
        algorithm: str,
        params: dict,
        requested: str,
        *,
        result,
        version: int,
        degraded: bool,
        cache_hit: bool,
        stale_version: int | None = None,
    ) -> str:
        """Register and immediately complete a submit-time answer."""
        query = Query(
            algorithm=algorithm,
            params=params,
            degraded=degraded,
            requested_algorithm=requested if degraded else None,
            stale_version=stale_version,
        )
        query.cache_hit = cache_hit
        query.graph_version = version
        with self._registry_lock:
            self._queries[query.id] = query
            self._counters["submitted"] += 1
        query.finish(QueryState.DONE, result=result)
        with self._registry_lock:
            self._counters["completed"] += 1
            if degraded:
                self._counters["degraded"] += 1
        if degraded and obs.enabled():
            obs.count("serve.overload.degraded", 1.0, algorithm=requested)
        self._note_query(query)
        return query.id

    def _count_shed(self, reason: str) -> None:
        with self._registry_lock:
            self._counters["shed"] += 1
        if obs.enabled():
            obs.count("serve.overload.shed", 1.0, reason=reason)

    def _release_admission(self, q: Query) -> None:
        """Un-charge a query's cost from the queue accounting exactly once."""
        with self._registry_lock:
            if q.admission_released or (
                q.cost_estimate <= 0 and q.cost_memory_words <= 0
            ):
                return
            q.admission_released = True
        self.admission.release(
            q.cost_estimate, memory_words=q.cost_memory_words
        )

    def _complete(self, q: Query, payload, version: int, *, batch_size: int) -> None:
        if q.state.terminal:
            return  # cancelled while running
        q.graph_version = version
        q.batch_size = batch_size
        q.finish(QueryState.DONE, result=payload)
        with self._registry_lock:
            self._counters["completed"] += 1
            if q.degraded:
                self._counters["degraded"] += 1
        if q.degraded and obs.enabled():
            obs.count(
                "serve.overload.degraded",
                1.0,
                algorithm=q.requested_algorithm or q.algorithm,
            )
        self._note_query(q)

    def _fail(self, q: Query, state: QueryState, message: str) -> None:
        if q.state.terminal:
            return
        q.finish(state, error=message)
        with self._registry_lock:
            self._counters[
                "expired" if state is QueryState.EXPIRED else "failed"
            ] += 1
        self._note_query(q)

    def _note_query(self, q: Query) -> None:
        if not obs.enabled():
            return
        obs.count(
            "serve.queries", 1.0, algorithm=q.algorithm, outcome=q.state.value
        )
        obs.complete(
            "serve.query",
            cat="serve",
            wall_dur=q.queue_seconds + q.compute_seconds,
            args={
                "id": q.id,
                "algorithm": q.algorithm,
                "outcome": q.state.value,
                "cache_hit": q.cache_hit,
                "degraded": q.degraded,
                "queue_s": q.queue_seconds,
                "compute_s": q.compute_seconds,
                "batch": q.batch_size,
                "attempts": q.attempts,
            },
        )


def _wall() -> float:
    return time.perf_counter()
