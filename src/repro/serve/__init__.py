"""``repro.serve`` — BC-as-a-service: the runtime serves traffic, not jobs.

The paper amortizes communication by batching many sources into one
maximal-frontier sweep; this package applies the same economics to a
*query mix*: a persistent :class:`BCService` pins a distributed graph on a
warm machine, coalesces compatible concurrent single-source requests into
shared MFBC batches (:mod:`repro.serve.coalescer`), caches scores by
``(graph_version, algorithm, params)`` (:mod:`repro.serve.cache`), and
exposes async submit/poll/cancel plus a stdlib HTTP/JSON front end
(:mod:`repro.serve.http`).  :mod:`repro.serve.loadgen` is the seeded load
generator behind ``benchmarks/bench_serve_load.py`` and the CI smoke.

:mod:`repro.serve.overload` keeps the service alive under load-driven
failure: cost-aware admission control (queue bounds in queries *and*
modeled seconds, per-client token buckets), watermark-based brownout and
load shedding with hysteresis, a circuit breaker around the
fault-recovery ladder, and the watchdog/health model behind
``/v1/healthz``.  ``scripts/soak.py`` is the chaos-soak harness that
drives it past saturation with armed fault plans.

See ``docs/serving.md`` for architecture, coalescing rules, cache-key
semantics, overload behavior, and HTTP API examples.
"""

from repro.serve.cache import ScoreCache, cache_key
from repro.serve.coalescer import Coalescer, Query, QueryState
from repro.serve.http import ServiceHTTPServer, serve_http
from repro.serve.overload import (
    AdmissionController,
    AdmissionError,
    BreakerState,
    CircuitBreaker,
    CircuitOpen,
    CostEstimator,
    OverloadConfig,
    ServiceState,
    TokenBucket,
)
from repro.serve.service import ALGORITHMS, SOURCE_ALGORITHMS, BCService, QueryError

_LOADGEN_NAMES = {"LoadReport", "generate_queries", "run_load", "DEFAULT_MIX"}


def __getattr__(name: str):
    # lazy: ``python -m repro.serve.loadgen`` must not find the module
    # already imported by its own package (runpy double-import warning)
    if name in _LOADGEN_NAMES:
        from repro.serve import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BCService",
    "QueryError",
    "ALGORITHMS",
    "SOURCE_ALGORITHMS",
    "Query",
    "QueryState",
    "Coalescer",
    "ScoreCache",
    "cache_key",
    "ServiceHTTPServer",
    "serve_http",
    "LoadReport",
    "generate_queries",
    "run_load",
    "OverloadConfig",
    "AdmissionController",
    "AdmissionError",
    "CircuitOpen",
    "CircuitBreaker",
    "BreakerState",
    "CostEstimator",
    "TokenBucket",
    "ServiceState",
]
