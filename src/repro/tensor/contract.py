"""Generalized tensor contraction by reduction to sparse matmul.

``contract(a, ia, b, ib, out, spec)`` computes

    C[out] = ⊕_{shared} f(A[ia], B[ib])

for index strings in einsum style (e.g. ``"ijk", "kl" → "ijl"``), where
exactly one index is shared (the contracted mode) and every other index
appears in ``out``.  The implementation is the paper's §1 observation made
executable: permute each operand so the contracted mode is innermost/
outermost, *unfold* free modes into one matrix dimension, run the
generalized SpGEMM kernel, and *fold* the result back.
"""

from __future__ import annotations

from repro.algebra.matmul import MatMulSpec
from repro.sparse.spgemm import spgemm
from repro.tensor.sptensor import SpTensor

__all__ = ["contract", "contract_with_ops"]


def _validate(a: SpTensor, ia: str, b: SpTensor, ib: str, out: str) -> str:
    if len(ia) != a.order or len(ib) != b.order:
        raise ValueError(
            f"index strings {ia!r}/{ib!r} do not match tensor orders "
            f"{a.order}/{b.order}"
        )
    if len(set(ia)) != len(ia) or len(set(ib)) != len(ib) or len(set(out)) != len(out):
        raise ValueError("repeated index within one operand is not supported")
    shared = set(ia) & set(ib)
    if len(shared) != 1:
        raise ValueError(
            f"contraction requires exactly one shared index, got {sorted(shared)}"
        )
    k = shared.pop()
    free = (set(ia) | set(ib)) - {k}
    if set(out) != free:
        raise ValueError(
            f"output indices {out!r} must be exactly the free indices "
            f"{sorted(free)}"
        )
    if k in out:
        raise ValueError(f"contracted index {k!r} cannot appear in the output")
    if not out:
        raise ValueError("scalar (order-0) outputs are not supported")
    if len(out) > 3:
        raise ValueError(
            f"output order {len(out)} exceeds the supported maximum of 3"
        )
    # extents of the shared mode must agree
    if a.shape[ia.index(k)] != b.shape[ib.index(k)]:
        raise ValueError(
            f"contracted extents differ: {a.shape[ia.index(k)]} vs "
            f"{b.shape[ib.index(k)]}"
        )
    return k


def contract_with_ops(
    a: SpTensor,
    ia: str,
    b: SpTensor,
    ib: str,
    out: str,
    spec: MatMulSpec,
) -> tuple[SpTensor, int]:
    """Contract and also report the elementary-product count."""
    k = _validate(a, ia, b, ib, out)

    # output mode order: A's free indices (in 'out' order restricted to A)
    # first, then B's — we build that then permute to the requested 'out'.
    a_free = [c for c in out if c in ia]
    b_free = [c for c in out if c in ib]

    # unfold A to rows = (a_free..., in order) × cols = (k)
    a_mat = a.unfold([ia.index(c) for c in a_free])
    # unfold B to rows = (k) × cols = free modes; unfold packs column modes
    # in ascending *mode* order, so permute B first when the desired b_free
    # order differs (CTF's "data reordering before contraction").
    if [ib.index(c) for c in b_free] != sorted(ib.index(c) for c in b_free):
        b = b.permute([ib.index(k)] + [ib.index(c) for c in b_free])
        ib = k + "".join(b_free)
    b_mat = b.unfold([ib.index(k)])

    res = spgemm(a_mat, b_mat, spec)
    a_free_shape = [a.shape[ia.index(c)] for c in a_free]
    b_free_shape = [b.shape[ib.index(c)] for c in b_free]
    folded = SpTensor.fold(res.matrix, a_free_shape or [1], b_free_shape or [1])
    # drop padding modes introduced for scalar-side folds
    natural = a_free + b_free
    if not a_free:
        folded = _drop_unit_mode(folded, 0)
    if not b_free:
        folded = _drop_unit_mode(folded, folded.order - 1)
    # permute from natural (a_free + b_free) order to the requested 'out'
    perm = [natural.index(c) for c in out]
    if perm != list(range(len(perm))):
        folded = folded.permute(perm)
    return folded, res.ops


def _drop_unit_mode(t: SpTensor, mode: int) -> SpTensor:
    if t.shape[mode] != 1:
        raise ValueError("can only drop a unit mode")
    shape = tuple(s for i, s in enumerate(t.shape) if i != mode)
    coords = tuple(c for i, c in enumerate(t.coords) if i != mode)
    return SpTensor(shape, coords, t.vals, t.monoid, canonical=True)


def contract(
    a: SpTensor, ia: str, b: SpTensor, ib: str, out: str, spec: MatMulSpec
) -> SpTensor:
    """Convenience wrapper returning only the contracted tensor."""
    return contract_with_ops(a, ia, b, ib, out, spec)[0]
