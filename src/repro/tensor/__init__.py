"""Sparse tensors of order ≤ 3 with monoid-generalized contractions.

CTF — the substrate the paper builds on — is a *tensor* framework: "tensors
of order higher than two can represent hypergraphs" (§6.1), and "aside from
the need for transposition (data-reordering), sparse tensor contractions are
equivalent to sparse matrix multiplication" (§1).  This package implements
exactly that reduction:

* :class:`~repro.tensor.sptensor.SpTensor` — canonical sparse COO tensors
  over any monoid, with mode permutation (the "data reordering");
* :func:`~repro.tensor.contract.contract` — generalized contraction
  ``C[out] = ⊕ f(A[ia], B[ib])`` over any single shared mode, lowered to
  the same vectorized SpGEMM kernel MFBC uses by flattening free modes;
* :class:`~repro.tensor.einsum.TensorExpr` — the einsum-style front end
  extending :mod:`repro.ctfapi` to order-3 operands.
"""

from repro.tensor.sptensor import SpTensor
from repro.tensor.contract import contract
from repro.tensor.dist import DistTensor, contract_distributed

__all__ = ["SpTensor", "contract", "DistTensor", "contract_distributed"]
