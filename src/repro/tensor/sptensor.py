"""Canonical sparse COO tensors over monoids (order 1–3).

The tensor analogue of :class:`~repro.sparse.SpMat`: coordinates are a tuple
of index columns, values a columnar field array, canonical form is
sorted-unique-pruned under the element monoid.  Mode permutation is CTF's
"data reordering"; matricization (:meth:`SpTensor.unfold`) flattens a group
of modes into one, which is how contractions reduce to sparse matmul.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.algebra.fields import FieldArray, take_fields
from repro.algebra.monoid import Monoid
from repro.sparse.spmatrix import SpMat

__all__ = ["SpTensor"]

MAX_ORDER = 3


class SpTensor:
    """A sparse tensor of order 1–3 with monoid-valued entries.

    Parameters
    ----------
    shape:
        Mode extents (1 to 3 of them).
    coords:
        Sequence of index arrays, one per mode, equal lengths.
    vals:
        Field array of values aligned with the coordinates.
    monoid:
        Element monoid (identity = unstored value, duplicate folding = ⊕).
    """

    __slots__ = ("shape", "coords", "vals", "monoid")

    def __init__(
        self,
        shape: Sequence[int],
        coords: Sequence[np.ndarray],
        vals: FieldArray,
        monoid: Monoid,
        *,
        canonical: bool = False,
    ) -> None:
        shape = tuple(int(s) for s in shape)
        if not 1 <= len(shape) <= MAX_ORDER:
            raise ValueError(f"order must be 1..{MAX_ORDER}, got {len(shape)}")
        if any(s < 0 for s in shape):
            raise ValueError(f"negative extent in shape {shape}")
        if len(coords) != len(shape):
            raise ValueError(
                f"{len(shape)} coordinate arrays required, got {len(coords)}"
            )
        coords = tuple(np.asarray(c, dtype=np.int64) for c in coords)
        lengths = {len(c) for c in coords}
        if len(lengths) != 1:
            raise ValueError("ragged coordinate arrays")
        for c, s in zip(coords, shape):
            if len(c) and (c.min() < 0 or c.max() >= s):
                raise ValueError("coordinate out of bounds")
        vals = {
            name: np.asarray(vals[name], dtype=dtype)
            for name, dtype in monoid.field_spec
        }
        self.shape = shape
        self.monoid = monoid
        if canonical:
            self.coords, self.vals = coords, vals
        else:
            self.coords, self.vals = self._canonicalize(coords, vals)

    # -- canonical form -----------------------------------------------------

    def _linearize(self, coords) -> np.ndarray:
        key = coords[0].astype(np.int64)
        for c, s in zip(coords[1:], self.shape[1:]):
            key = key * s + c
        return key

    def _delinearize(self, keys: np.ndarray) -> tuple[np.ndarray, ...]:
        out = []
        for s in reversed(self.shape[1:]):
            out.append(keys % s)
            keys = keys // s
        out.append(keys)
        return tuple(reversed(out))

    def _canonicalize(self, coords, vals):
        keys = self._linearize(coords)
        keys, vals = self.monoid.reduce_by_key(keys, vals)
        keep = ~self.monoid.is_identity(vals)
        if not keep.all():
            keys = keys[keep]
            vals = take_fields(vals, keep.nonzero()[0])
        return self._delinearize(keys), vals

    # -- constructors ---------------------------------------------------------

    @classmethod
    def empty(cls, shape: Sequence[int], monoid: Monoid) -> "SpTensor":
        z = np.empty(0, dtype=np.int64)
        return cls(shape, [z] * len(tuple(shape)), monoid.empty(), monoid,
                   canonical=True)

    @classmethod
    def from_spmat(cls, mat: SpMat) -> "SpTensor":
        return cls(
            mat.shape, (mat.rows, mat.cols), mat.vals, mat.monoid, canonical=True
        )

    # -- properties -----------------------------------------------------------

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return len(self.coords[0]) if self.coords else 0

    def size(self) -> int:
        return math.prod(self.shape)

    # -- mode operations ---------------------------------------------------------

    def permute(self, perm: Sequence[int]) -> "SpTensor":
        """Reorder modes (CTF's transposition / data reordering).

        ``perm[i]`` names the source mode that becomes mode ``i``.
        """
        perm = tuple(int(p) for p in perm)
        if sorted(perm) != list(range(self.order)):
            raise ValueError(f"invalid permutation {perm} for order {self.order}")
        return SpTensor(
            tuple(self.shape[p] for p in perm),
            tuple(self.coords[p] for p in perm),
            self.vals,
            self.monoid,
        )

    def unfold(self, row_modes: Sequence[int]) -> SpMat:
        """Matricize: ``row_modes`` (in order) flatten to the matrix rows,
        the remaining modes (in ascending order) to the columns."""
        row_modes = tuple(int(m) for m in row_modes)
        if len(set(row_modes)) != len(row_modes) or any(
            not 0 <= m < self.order for m in row_modes
        ):
            raise ValueError(f"invalid row modes {row_modes}")
        col_modes = tuple(m for m in range(self.order) if m not in row_modes)

        def flatten(modes):
            if not modes:
                return np.zeros(self.nnz, dtype=np.int64), 1
            idx = self.coords[modes[0]].astype(np.int64)
            extent = self.shape[modes[0]]
            for m in modes[1:]:
                idx = idx * self.shape[m] + self.coords[m]
                extent *= self.shape[m]
            return idx, extent

        rows, nrows = flatten(row_modes)
        cols, ncols = flatten(col_modes)
        return SpMat(nrows, ncols, rows, cols, self.vals, self.monoid)

    @classmethod
    def fold(
        cls,
        mat: SpMat,
        row_modes_shape: Sequence[int],
        col_modes_shape: Sequence[int],
    ) -> "SpTensor":
        """Inverse of :meth:`unfold`: split matrix rows/cols back into modes.

        ``row_modes_shape``/``col_modes_shape`` give the extents of the modes
        each matrix dimension packs (row-major).
        """
        shape = tuple(row_modes_shape) + tuple(col_modes_shape)

        def split(idx, extents):
            out = []
            for e in reversed(extents[1:]):
                out.append(idx % e)
                idx = idx // e
            out.append(idx)
            return list(reversed(out))

        coords = []
        coords.extend(split(mat.rows.astype(np.int64), tuple(row_modes_shape)))
        coords.extend(split(mat.cols.astype(np.int64), tuple(col_modes_shape)))
        return cls(shape, coords, mat.vals, mat.monoid, canonical=False)

    # -- elementwise ------------------------------------------------------------

    def combine(self, other: "SpTensor") -> "SpTensor":
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")
        from repro.algebra.fields import concat_fields

        coords = tuple(
            np.concatenate([a, b]) for a, b in zip(self.coords, other.coords)
        )
        return SpTensor(
            self.shape, coords, concat_fields([self.vals, other.vals]), self.monoid
        )

    def map(self, fn, monoid: Monoid | None = None) -> "SpTensor":
        monoid = monoid or self.monoid
        return SpTensor(
            self.shape,
            self.coords,
            fn({k: v.copy() for k, v in self.vals.items()}),
            monoid,
        )

    def filter(self, predicate) -> "SpTensor":
        keep = np.asarray(predicate(self.vals), dtype=bool)
        idx = keep.nonzero()[0]
        return SpTensor(
            self.shape,
            tuple(c[idx] for c in self.coords),
            take_fields(self.vals, idx),
            self.monoid,
            canonical=True,
        )

    def get(self, *index: int) -> dict[str, object]:
        """One entry (identity if unstored); for tests and debugging."""
        if len(index) != self.order:
            raise ValueError(f"need {self.order} indices")
        mask = np.ones(self.nnz, dtype=bool)
        for c, i in zip(self.coords, index):
            mask &= c == i
        pos = mask.nonzero()[0]
        if len(pos):
            return {k: v[pos[0]] for k, v in self.vals.items()}
        return dict(self.monoid.identity)

    def equals(self, other: "SpTensor") -> bool:
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        for a, b in zip(self.coords, other.coords):
            if not np.array_equal(a, b):
                return False
        return bool(np.all(self.monoid.equal(self.vals, other.vals)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpTensor(shape={self.shape}, nnz={self.nnz}, "
            f"monoid={type(self.monoid).__name__})"
        )
