"""Distributed sparse tensors: contraction on the simulated machine.

CTF's core capability: distributed tensors contracted by mapping modes onto
processor grids and lowering to distributed matmul.  A :class:`DistTensor`
stores one *unfolding* of the tensor as a block-distributed matrix; a
contraction re-unfolds each operand so that its free modes form one matrix
dimension and the contracted mode the other (a global transposition,
charged as a redistribution — §1's "aside from the need for transposition
(data-reordering), sparse tensor contractions are equivalent to sparse
matrix multiplication"), then runs the distributed SpGEMM stack.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.matmul import MatMulSpec
from repro.dist.distmat import DistMat
from repro.dist.engine import DistributedEngine
from repro.tensor.sptensor import SpTensor

__all__ = ["DistTensor", "contract_distributed"]


class DistTensor:
    """An order-≤3 sparse tensor stored as a distributed unfolding.

    Parameters
    ----------
    distmat:
        The block-distributed matrix holding one unfolding.
    shape:
        The tensor's mode extents.
    row_modes, col_modes:
        Which tensor modes the matrix rows/columns pack (row-major, in
        order).
    """

    __slots__ = ("distmat", "shape", "row_modes", "col_modes")

    def __init__(
        self,
        distmat: DistMat,
        shape: tuple[int, ...],
        row_modes: tuple[int, ...],
        col_modes: tuple[int, ...],
    ) -> None:
        shape = tuple(int(s) for s in shape)
        if sorted(row_modes + col_modes) != list(range(len(shape))):
            raise ValueError(
                f"modes {row_modes}+{col_modes} do not partition order "
                f"{len(shape)}"
            )
        self.distmat = distmat
        self.shape = shape
        self.row_modes = tuple(row_modes)
        self.col_modes = tuple(col_modes)

    # -- construction -------------------------------------------------------

    @classmethod
    def distribute(
        cls,
        tensor: SpTensor,
        engine: DistributedEngine,
        row_modes: tuple[int, ...] | None = None,
    ) -> "DistTensor":
        """Scatter a node-local tensor onto the engine's machine.

        ``row_modes`` chooses the stored unfolding (default: mode 0 rows).
        """
        if row_modes is None:
            row_modes = (0,)
        row_modes = tuple(int(m) for m in row_modes)
        col_modes = tuple(
            m for m in range(tensor.order) if m not in row_modes
        )
        mat = tensor.unfold(row_modes)
        dm = DistMat.distribute(mat, engine.machine, engine.home_ranks2d)
        return cls(dm, tensor.shape, row_modes, col_modes)

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return self.distmat.nnz

    # -- materialization -------------------------------------------------------

    def gather(self, *, charge: bool = True) -> SpTensor:
        """Reassemble the full tensor node-locally (natural mode order)."""
        from repro.tensor.contract import _drop_unit_mode

        mat = self.distmat.gather(charge=charge)
        row_shape = [self.shape[m] for m in self.row_modes] or [1]
        col_shape = [self.shape[m] for m in self.col_modes] or [1]
        folded = SpTensor.fold(mat, row_shape, col_shape)
        # drop the padding modes introduced when one side packs no modes
        if not self.row_modes:
            folded = _drop_unit_mode(folded, 0)
        if not self.col_modes:
            folded = _drop_unit_mode(folded, folded.order - 1)
        # folded mode order is row_modes + col_modes; permute to natural
        packed = list(self.row_modes) + list(self.col_modes)
        perm = [packed.index(m) for m in range(self.order)]
        return folded.permute(perm)

    # -- layout changes ------------------------------------------------------------

    def reunfold(self, row_modes: tuple[int, ...]) -> "DistTensor":
        """Switch to a different stored unfolding (a global transposition).

        Charged as one all-to-all over the participating ranks sized by the
        per-rank share of the tensor — every element moves once, which is
        what CTF's sparse redistribution pays for a transposition.
        """
        row_modes = tuple(int(m) for m in row_modes)
        if row_modes == self.row_modes:
            return self
        machine = self.distmat.machine
        local = self.gather(charge=False)
        out = DistTensor.distribute_uncharged(
            local, machine, self.distmat.ranks2d, row_modes
        )
        participants = np.unique(self.distmat.ranks2d.ravel())
        if len(participants) > 1 and self.distmat.words():
            machine.charge_collective(
                participants,
                self.distmat.words() / len(participants) * 2.0,
                weight=1.0,
                category="redistribute",
            )
        return out

    @classmethod
    def distribute_uncharged(cls, tensor, machine, ranks2d, row_modes):
        """Internal: distribute without charging (movement charged by caller)."""
        row_modes = tuple(int(m) for m in row_modes)
        col_modes = tuple(m for m in range(tensor.order) if m not in row_modes)
        mat = tensor.unfold(row_modes)
        dm = DistMat.distribute(mat, machine, ranks2d, charge=False)
        return cls(dm, tensor.shape, row_modes, col_modes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistTensor(shape={self.shape}, rows={self.row_modes}, "
            f"cols={self.col_modes}, nnz={self.nnz})"
        )


def contract_distributed(
    a: DistTensor,
    ia: str,
    b: DistTensor,
    ib: str,
    out: str,
    spec: MatMulSpec,
    engine: DistributedEngine,
) -> DistTensor:
    """``C[out] = ⊕ f(A[ia], B[ib])`` on the simulated machine.

    Index semantics match :func:`repro.tensor.contract.contract`; the output
    tensor is distributed with its first mode as the stored rows.
    """
    from repro.tensor.contract import _validate

    k = _validate(_Shim(a), ia, _Shim(b), ib, out)
    a_free = [c for c in out if c in ia]
    b_free = [c for c in out if c in ib]

    # re-unfold operands into contraction-ready layouts
    a_ready = a.reunfold(tuple(ia.index(c) for c in a_free))
    b_ready = b.reunfold((ib.index(k),))
    # B's columns must pack b_free in 'out' order; unfold packs ascending,
    # so detour through a local permutation when the orders differ.
    asc = sorted(ib.index(c) for c in b_free)
    want = [ib.index(c) for c in b_free]
    if want != asc:
        local_b = b_ready.gather(charge=False).permute(
            [ib.index(k)] + want
        )
        b_ready = DistTensor.distribute_uncharged(
            local_b, engine.machine, engine.home_ranks2d, (0,)
        )

    c_mat, _ = engine.spgemm(a_ready.distmat, b_ready.distmat, spec)
    # the produced matrix packs (a_free | b_free) — the "natural" order
    natural = a_free + b_free
    nat_shape = tuple(
        a.shape[ia.index(c)] if c in ia else b.shape[ib.index(c)]
        for c in natural
    )
    tensor = DistTensor(
        c_mat,
        nat_shape,
        tuple(range(len(a_free))),
        tuple(range(len(a_free), len(natural))),
    )
    if natural == list(out):
        return tensor
    # permute modes to the requested output order (charged reshuffle)
    local = tensor.gather(charge=False).permute(
        [natural.index(c) for c in out]
    )
    result = DistTensor.distribute_uncharged(
        local, engine.machine, engine.home_ranks2d, (0,)
    )
    participants = np.unique(c_mat.ranks2d.ravel())
    if len(participants) > 1 and c_mat.words():
        engine.machine.charge_collective(
            participants,
            c_mat.words() / len(participants) * 2.0,
            weight=1.0,
            category="redistribute",
        )
    return result


class _Shim:
    """Adapter giving DistTensor the attributes _validate expects."""

    def __init__(self, t: DistTensor) -> None:
        self.order = t.order
        self.shape = t.shape
