"""A CTF-style index-notation front end (§6.1 of the paper).

The paper programs MFBC through CTF's einsum-like API:

.. code-block:: c++

    Kernel<W,M,M,u,f> BF;
    Z["ij"] = BF(A["ik"], Z["kj"]);

This module reproduces that surface in Python over the same engine stack:

>>> from repro.ctfapi import Matrix, Kernel, Function
>>> from repro.algebra import MULTPATH, bellman_ford_action
>>> BF = Kernel(MULTPATH, bellman_ford_action)
>>> Z["ij"] = BF(T["ik"], A["kj"])           # generalized matmul
>>> B["ij"] = Function(lambda v: {"w": 1.0 / v["w"]})(A["ij"])  # Transform
>>> C["ij"] = A["ij"] + B["ij"]              # elementwise monoid sum
>>> D["ij"] = A["ji"]                        # transpose

Index strings are two distinct characters per matrix; a contraction is
recognized when the two operands share exactly one index (the contracted
mode), matching how CTF parses ``"ik", "kj" → "ij"``.  Everything lowers to
the same :class:`~repro.sparse.SpMat`/:class:`~repro.dist.DistMat`
operations MFBC uses, so expressions run sequentially or distributed
depending on the wrapped matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.algebra.fields import FieldArray
from repro.algebra.matmul import MatMulSpec
from repro.algebra.monoid import Monoid
from repro.core.engine import Engine, SequentialEngine
from repro.sparse.spmatrix import SpMat

__all__ = [
    "Matrix",
    "Kernel",
    "Function",
    "Transform",
    "Tensor",
    "TensorKernel",
]


def _check_indices(idx: str) -> str:
    if len(idx) != 2 or idx[0] == idx[1]:
        raise ValueError(
            f"matrix indices must be two distinct characters, got {idx!r}"
        )
    return idx


@dataclass(frozen=True)
class IndexedMatrix:
    """A matrix tagged with mode labels — the value of ``M["ij"]``."""

    matrix: "Matrix"
    indices: str

    def _oriented(self, out_indices: str):
        """The underlying data, transposed if labels are reversed."""
        if self.indices == out_indices:
            return self.matrix.data
        if self.indices == out_indices[::-1]:
            return self.matrix.data.transpose()
        raise ValueError(
            f"cannot reconcile indices {self.indices!r} with {out_indices!r}"
        )

    def __add__(self, other: "IndexedMatrix") -> "_Expr":
        return _Expr(lambda out: self._oriented(out).combine(other._oriented(out)))


@dataclass(frozen=True)
class _Expr:
    """A lazy right-hand side, evaluated against the target's indices."""

    evaluate: Callable[[str], object]


class Matrix:
    """An algebra-carrying matrix programmable with index notation.

    Parameters
    ----------
    nrows, ncols:
        Dimensions.
    monoid:
        Element monoid (defines the sparsity "zero").
    engine:
        Execution engine; matrices in one expression must share it.
    data:
        Optional initial contents (engine representation or ``SpMat``).
    """

    def __init__(
        self,
        nrows: int,
        ncols: int,
        monoid: Monoid,
        *,
        engine: Engine | None = None,
        data=None,
    ) -> None:
        self.engine = engine or SequentialEngine()
        self.monoid = monoid
        if data is None:
            empty = SpMat.empty(nrows, ncols, monoid)
            if isinstance(self.engine, SequentialEngine):
                data = empty
            else:
                z = np.empty(0, dtype=np.int64)
                data = self.engine.matrix(nrows, ncols, z, z, monoid.empty(), monoid)
        self.data = data

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_spmat(cls, mat: SpMat, *, engine: Engine | None = None) -> "Matrix":
        engine = engine or SequentialEngine()
        if isinstance(engine, SequentialEngine):
            data = mat
        else:
            data = engine.matrix(
                mat.nrows, mat.ncols, mat.rows, mat.cols, mat.vals, mat.monoid
            )
        return cls(mat.nrows, mat.ncols, mat.monoid, engine=engine, data=data)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.data.nrows, self.data.ncols)

    @property
    def nnz(self) -> int:
        return self.data.nnz

    def read(self) -> SpMat:
        """Materialize node-locally (CTF ``Tensor::read``)."""
        return self.engine.gather(self.data)

    # -- index notation ------------------------------------------------------

    def __getitem__(self, indices: str) -> IndexedMatrix:
        return IndexedMatrix(self, _check_indices(indices))

    def __setitem__(self, indices: str, rhs) -> None:
        _check_indices(indices)
        if isinstance(rhs, IndexedMatrix):
            result = rhs._oriented(indices)
        elif isinstance(rhs, _Expr):
            result = rhs.evaluate(indices)
        else:
            raise TypeError(
                f"cannot assign {type(rhs).__name__} to an indexed matrix"
            )
        if (result.nrows, result.ncols) != self.shape:
            raise ValueError(
                f"assignment shape {(result.nrows, result.ncols)} does not "
                f"match target {self.shape}"
            )
        self.data = result


class Kernel:
    """A contraction kernel ``C["ij"] = K(A["ik"], B["kj"])`` (§6.1).

    Bundles the output monoid ``⊕`` and the elementwise map ``f`` exactly
    like CTF's ``Kernel<W,M,M,u,f>`` template.
    """

    def __init__(self, monoid: Monoid, f, name: str = "kernel") -> None:
        self.spec = MatMulSpec(monoid, f, name=name)

    def __call__(self, a: IndexedMatrix, b: IndexedMatrix) -> _Expr:
        ia, ib = a.indices, b.indices
        shared = set(ia) & set(ib)
        if len(shared) != 1:
            raise ValueError(
                f"contraction requires exactly one shared index, got "
                f"{ia!r} × {ib!r}"
            )
        k = shared.pop()
        free = set(ia + ib) - {k}

        def evaluate(target: str):
            if set(target) != free:
                raise ValueError(
                    f"target indices {target!r} do not match the "
                    f"contraction's free indices {sorted(free)}"
                )
            # orient operands so the contracted index is inner:
            # lhs carries (target_row, k), rhs carries (k, target_col)
            lhs, rhs = (a, b) if target[0] in ia else (b, a)
            lmat = lhs._oriented(target[0] + k)
            rmat = rhs._oriented(k + target[1])
            result, _ = lhs.matrix.engine.spgemm(lmat, rmat, self.spec)
            return result

        return _Expr(evaluate)


class Function:
    """An elementwise function applied through index notation (§6.1's
    ``Function<int,float>`` example)."""

    def __init__(self, fn: Callable[[FieldArray], FieldArray], monoid: Monoid | None = None):
        self.fn = fn
        self.monoid = monoid

    def __call__(self, a: IndexedMatrix) -> _Expr:
        def evaluate(target: str):
            oriented = a._oriented(target)
            return oriented.map(self.fn, monoid=self.monoid)

        return _Expr(evaluate)


def Transform(matrix: Matrix, fn: Callable[[FieldArray], FieldArray]) -> None:
    """In-place elementwise modification (CTF ``Transform``)."""
    matrix.data = matrix.data.map(fn)


# ---------------------------------------------------------------------------
# order-3 tensors: the same notation over SpTensor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexedTensor:
    """A tensor tagged with mode labels — the value of ``T["ijk"]``."""

    tensor: "Tensor"
    indices: str


class Tensor:
    """An order-1..3 tensor programmable with index notation.

    The tensor extension of :class:`Matrix`: ``C["ijl"] = K(A["ijk"],
    B["kl"])`` contracts over the shared index through
    :func:`repro.tensor.contract.contract` (node-local; distribute the
    matricized form through :class:`Matrix` when machine execution is
    needed).
    """

    def __init__(self, shape, monoid: Monoid, *, data=None) -> None:
        from repro.tensor.sptensor import SpTensor

        self.monoid = monoid
        self.data = data if data is not None else SpTensor.empty(shape, monoid)

    @classmethod
    def from_sptensor(cls, t) -> "Tensor":
        return cls(t.shape, t.monoid, data=t)

    @property
    def shape(self):
        return self.data.shape

    @property
    def nnz(self) -> int:
        return self.data.nnz

    def __getitem__(self, indices: str) -> IndexedTensor:
        if len(indices) != self.data.order or len(set(indices)) != len(indices):
            raise ValueError(
                f"need {self.data.order} distinct indices, got {indices!r}"
            )
        return IndexedTensor(self, indices)

    def __setitem__(self, indices: str, rhs) -> None:
        if isinstance(rhs, IndexedTensor):
            # pure mode permutation
            src = rhs.tensor.data
            perm = [rhs.indices.index(c) for c in indices]
            result = src.permute(perm)
        elif isinstance(rhs, _TensorExpr):
            result = rhs.evaluate(indices)
        else:
            raise TypeError(
                f"cannot assign {type(rhs).__name__} to an indexed tensor"
            )
        if result.shape != self.shape:
            raise ValueError(
                f"assignment shape {result.shape} does not match target "
                f"{self.shape}"
            )
        self.data = result


@dataclass(frozen=True)
class _TensorExpr:
    evaluate: Callable[[str], object]


class TensorKernel:
    """Contraction kernel over tensors: ``C["ijl"] = K(A["ijk"], B["kl"])``."""

    def __init__(self, monoid: Monoid, f, name: str = "tensor-kernel") -> None:
        self.spec = MatMulSpec(monoid, f, name=name)

    def __call__(self, a: IndexedTensor, b: IndexedTensor) -> _TensorExpr:
        from repro.tensor.contract import contract

        def evaluate(target: str):
            return contract(
                a.tensor.data, a.indices, b.tensor.data, b.indices, target,
                self.spec,
            )

        return _TensorExpr(evaluate)
