"""Evaluation machinery: metrics, performance models, scaling harnesses.

Two complementary ways to produce the paper's numbers:

* **full simulation** — run MFBC on a :class:`~repro.dist.DistributedEngine`
  and read the machine's critical-path ledger (used for Table 3, where the
  paper itself reports critical-path W/S from profiled collectives);
* **hybrid modeling** — run MFBC once on the sequential engine to collect
  the exact per-iteration frontier/product sizes and operation counts, then
  evaluate the §5.2 cost model per product for any processor count (used
  for the scaling figures, where the paper sweeps p over two orders of
  magnitude; this is exactly how Theorem 5.1 aggregates per-product costs).
"""

from repro.analysis.teps import mteps, mteps_per_node, traversed_edges
from repro.analysis.perfmodel import ModeledRun, model_run
from repro.analysis.theory import (
    apsp_bandwidth_words,
    mfbc_bandwidth_words,
    mfbc_latency_messages,
    mfbc_memory_words,
    strong_scaling_range,
)
from repro.analysis.scaling import (
    ScalingPoint,
    edge_weak_scaling,
    strong_scaling,
    vertex_weak_scaling,
)
from repro.analysis.report import (
    format_table,
    format_trace_report,
    trace_attribution,
    write_markdown_table,
)

__all__ = [
    "mteps",
    "mteps_per_node",
    "traversed_edges",
    "ModeledRun",
    "model_run",
    "mfbc_bandwidth_words",
    "mfbc_latency_messages",
    "mfbc_memory_words",
    "apsp_bandwidth_words",
    "strong_scaling_range",
    "ScalingPoint",
    "strong_scaling",
    "edge_weak_scaling",
    "vertex_weak_scaling",
    "format_table",
    "write_markdown_table",
    "trace_attribution",
    "format_trace_report",
]
