"""Strong- and weak-scaling experiment harnesses (§7.2, §7.3).

Each harness runs the algorithm *once* per graph on the sequential engine to
obtain its exact execution trace (per-product frontier/output sizes and
operation counts), then prices that trace on machines with varying processor
counts via :func:`~repro.analysis.perfmodel.model_run` — the hybrid
methodology described in :mod:`repro.analysis` and DESIGN.md.  Results come
back as :class:`ScalingPoint` rows ready for the benches to print.

Batch-size handling follows §7.1: the paper reports the best rate over a
range of batch sizes; pass several via ``batch_sizes`` to reproduce that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.perfmodel import model_run
from repro.analysis.teps import mteps_per_node
from repro.core.mfbc import mfbc
from repro.core.stats import BatchStats, MFBCStats
from repro.graphs.graph import Graph
from repro.machine.machine import CostParams
from repro.spgemm.selector import SelectionPolicy

__all__ = [
    "ScalingPoint",
    "trace_mfbc",
    "trace_combblas",
    "strong_scaling",
    "edge_weak_scaling",
    "vertex_weak_scaling",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One (graph, p) point of a scaling curve."""

    graph_name: str
    n: int
    m: int
    p: int
    seconds: float
    comm_seconds: float
    mteps_per_node: float
    words: float
    msgs: float


def trace_mfbc(
    graph: Graph,
    batch_size: int | None = None,
    *,
    max_batches: int | None = None,
) -> tuple[MFBCStats, int]:
    """Sequential MFBC trace; returns (stats, sources traced)."""
    res = mfbc(graph, batch_size=batch_size, max_batches=max_batches)
    return res.stats, res.stats.sources_processed


def trace_combblas(
    graph: Graph,
    batch_size: int | None = None,
    *,
    max_batches: int | None = None,
) -> tuple[MFBCStats, int]:
    """CombBLAS-style trace converted into the shared stats shape.

    The CombBLAS result records aggregate matmul/ops counters; to price it
    per product we re-run its batches capturing per-product sizes through a
    recording engine.
    """
    from repro.analysis._trace import RecordingEngine

    eng = RecordingEngine()
    from repro.baselines.combblas_bc import combblas_bc

    res = combblas_bc(
        graph, batch_size=batch_size, engine=eng, max_batches=max_batches
    )
    stats = MFBCStats()
    stats.batches.append(BatchStats(sources=res._sources, iterations=eng.records))
    return stats, res._sources


#: Memory slack factor on the adjacency share: the graph fits with this much
#: headroom at the reference processor count, bounding replication factors to
#: c ≲ MEMORY_SLACK·p/p_ref (the §5.3.4 strong-scaling-range behaviour).
MEMORY_SLACK = 4.0


def default_memory_budget(graph: Graph, p_ref: int, nb: int) -> float:
    """A realistic constant per-node memory budget, in matrix *entries*
    (the unit the §5.2 cost models use).

    Real clusters have fixed memory per node, sized so the problem *just*
    fits at the smallest benchmarked processor count ``p_ref`` — the paper's
    graphs do not fit on one node, which is exactly why replication factors
    ``c`` are bounded and Theorem 5.1's ``M = Ω(c·m/p)`` constraint binds.
    The budget is the exact share of the ``n × nb`` working matrices plus
    ``MEMORY_SLACK``× the adjacency share at ``p_ref``; whole-graph
    replication (the communication-free degenerate strategy of §5.3.2) is
    thereby infeasible once ``p_ref`` exceeds the slack, as on the paper's
    machines.
    """
    working_entries = 2 * graph.n * max(nb, 1)  # T and Z
    return (
        working_entries + MEMORY_SLACK * graph.nnz_adjacency
    ) / max(p_ref, 1)


def _price(
    name: str,
    graph: Graph,
    stats: MFBCStats,
    sources: int,
    p_values: Sequence[int],
    cost: CostParams,
    policy: SelectionPolicy | None,
    memory_words: float | None,
) -> list[ScalingPoint]:
    points = []
    for p in p_values:
        budget = memory_words
        run = None
        while run is None:
            try:
                run = model_run(
                    stats, graph, p, cost=cost, policy=policy, memory_words=budget
                )
            except ValueError:
                # budget admits no plan at this p — relax it stepwise rather
                # than abort the sweep (the point is then memory-bound)
                budget = budget * 2 if budget is not None else None
        # scale the modeled time for the traced source subset up to a rate
        points.append(
            ScalingPoint(
                graph_name=name or graph.name,
                n=graph.n,
                m=graph.m,
                p=p,
                seconds=run.seconds,
                comm_seconds=run.comm_seconds,
                mteps_per_node=mteps_per_node(graph, run.seconds, p, sources),
                words=run.words,
                msgs=run.msgs,
            )
        )
    return points


def strong_scaling(
    graph: Graph,
    p_values: Sequence[int],
    *,
    batch_sizes: Sequence[int | None] = (None,),
    tracer: Callable = trace_mfbc,
    cost: CostParams | None = None,
    policy: SelectionPolicy | None = None,
    max_batches: int | None = None,
    memory_words: float | None = None,
) -> list[ScalingPoint]:
    """Fixed graph, varying p; best rate over ``batch_sizes`` per point
    (§7.1's methodology)."""
    cost = cost or CostParams()
    best: dict[int, ScalingPoint] = {}
    for nb in batch_sizes:
        stats, sources = tracer(graph, nb, max_batches=max_batches)
        nb_eff = max((b.sources for b in stats.batches), default=1)
        budget = (
            memory_words
            if memory_words is not None
            else default_memory_budget(graph, min(p_values), nb_eff)
        )
        for pt in _price(
            graph.name, graph, stats, sources, p_values, cost, policy, budget
        ):
            if pt.p not in best or pt.mteps_per_node > best[pt.p].mteps_per_node:
                best[pt.p] = pt
    return [best[p] for p in p_values]


def edge_weak_scaling(
    n0: int,
    edge_fraction: float,
    p_values: Sequence[int],
    *,
    batch_size: int | None = None,
    cost: CostParams | None = None,
    policy: SelectionPolicy | None = None,
    max_batches: int | None = None,
    seed: int = 0,
    graph_factory: Callable[[int, float, int], Graph] | None = None,
) -> list[ScalingPoint]:
    """§7.3 "edge weak scaling": ``n²/p`` and the nonzero fraction constant,
    i.e. ``n = n0·√p``."""
    from repro.graphs.random_uniform import uniform_random_graph

    cost = cost or CostParams()
    factory = graph_factory or (
        lambda n, f, s: uniform_random_graph(n, f, seed=s)
    )
    points = []
    for i, p in enumerate(p_values):
        n = int(round(n0 * np.sqrt(p)))
        g = factory(n, edge_fraction, seed + i)
        stats, sources = trace_mfbc(g, batch_size, max_batches=max_batches)
        nb_eff = max((b.sources for b in stats.batches), default=1)
        budget = default_memory_budget(g, p, nb_eff)
        points.extend(
            _price(g.name, g, stats, sources, [p], cost, policy, budget)
        )
    return points


def vertex_weak_scaling(
    n0: int,
    avg_degree: float,
    p_values: Sequence[int],
    *,
    batch_size: int | None = None,
    cost: CostParams | None = None,
    policy: SelectionPolicy | None = None,
    max_batches: int | None = None,
    seed: int = 0,
) -> list[ScalingPoint]:
    """§7.3 "vertex weak scaling": ``n/p`` and the average degree constant,
    i.e. ``n = n0·p``."""
    from repro.graphs.random_uniform import uniform_random_graph_nm

    cost = cost or CostParams()
    points = []
    for i, p in enumerate(p_values):
        n = int(n0 * p)
        g = uniform_random_graph_nm(n, avg_degree, seed=seed + i)
        stats, sources = trace_mfbc(g, batch_size, max_batches=max_batches)
        nb_eff = max((b.sources for b in stats.batches), default=1)
        budget = default_memory_budget(g, p, nb_eff)
        points.extend(
            _price(g.name, g, stats, sources, [p], cost, policy, budget)
        )
    return points
