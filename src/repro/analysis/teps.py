"""TEPS: the paper's performance metric (§7.1).

"The number of edge traversals scales with the size of the graph.  For
betweenness centrality on a connected unweighted graph, each edge is
traversed to consider shortest paths from every starting node" — so a BC run
over ``n_sources`` sources on a graph with ``nnz(A)`` adjacency nonzeros
performs ``n_sources · nnz(A)`` edge traversals.
"""

from __future__ import annotations

from repro.graphs.graph import Graph

__all__ = ["traversed_edges", "mteps", "mteps_per_node"]


def traversed_edges(graph: Graph, n_sources: int | None = None) -> float:
    """Edge traversals of a BC run over ``n_sources`` sources (default: all)."""
    if n_sources is None:
        n_sources = graph.n
    return float(n_sources) * graph.nnz_adjacency


def mteps(graph: Graph, seconds: float, n_sources: int | None = None) -> float:
    """Millions of traversed edges per second."""
    if seconds <= 0:
        return 0.0
    return traversed_edges(graph, n_sources) / seconds / 1e6


def mteps_per_node(
    graph: Graph, seconds: float, nodes: int, n_sources: int | None = None
) -> float:
    """MTEPS divided by node count — the y-axis of Figures 1 and 2."""
    if nodes <= 0:
        raise ValueError(f"nodes must be positive, got {nodes}")
    return mteps(graph, seconds, n_sources) / nodes
