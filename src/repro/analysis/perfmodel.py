"""Hybrid performance model: measured algorithm trace × analytic machine.

:func:`model_run` takes the :class:`~repro.core.stats.MFBCStats` trace of a
sequential MFBC (or CombBLAS-style) run — the exact per-iteration frontier
sizes ``nnz(F_i)``, product sizes ``nnz(G_i)``, and elementary operation
counts — and prices every generalized product on a hypothetical ``p``-rank
machine by selecting the cheapest §5.2 plan for its actual operand sizes.

This is precisely how the proof of Theorem 5.1 computes MFBC's cost
(``W_MFBC = Σ_i W_MM(A, F_i, G_i, p)``), so modeled scaling curves inherit
the paper's asymptotic shape while reflecting each real graph's frontier
evolution.  The adjacency matrix's replication is charged once per run and
amortized, as in the proof.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import MFBCStats
from repro.machine.machine import CostParams
from repro.spgemm.plan import Plan
from repro.spgemm.selector import (
    SelectionPolicy,
    amortized_model_plan,
    enumerate_plans,
)

__all__ = ["ModeledRun", "model_run"]


@dataclass(frozen=True)
class ModeledRun:
    """Modeled execution of one BC run on a p-rank machine."""

    p: int
    seconds: float
    comm_seconds: float
    compute_seconds: float
    words: float
    msgs: float

    @property
    def breakdown(self) -> dict[str, float]:
        return {
            "seconds": self.seconds,
            "comm_seconds": self.comm_seconds,
            "compute_seconds": self.compute_seconds,
            "words": self.words,
            "msgs": self.msgs,
        }


def _best_estimate(
    p: int,
    m: int,
    k: int,
    n: int,
    nnz_a: int,
    nnz_b: int,
    nnz_c: int,
    ops: int,
    cost: CostParams,
    memory_words: float | None,
    plans: list[Plan],
):
    best = None
    best_t = float("inf")
    for plan in plans:
        # The adjacency matrix is always the second (B) operand of MFBC's
        # products and its replication is amortized across the whole run.
        est = amortized_model_plan(
            plan, m, k, n, nnz_a, nnz_b, frozenset("B"), nnz_c=nnz_c, ops=ops
        )
        if memory_words is not None and est.memory_words > memory_words:
            continue
        t = est.time(cost.alpha, cost.beta, cost.compute_rate)
        if t < best_t:
            best, best_t = est, t
    if best is None:
        raise ValueError(
            f"no plan fits memory budget {memory_words} at p={p} "
            f"(nnz_a={nnz_a}, nnz_b={nnz_b})"
        )
    return best


def model_run(
    stats: MFBCStats,
    graph,
    p: int,
    *,
    cost: CostParams | None = None,
    memory_words: float | None = None,
    policy: SelectionPolicy | None = None,
) -> ModeledRun:
    """Price a traced BC run on a ``p``-rank machine.

    Parameters
    ----------
    stats:
        Trace from a sequential run (``mfbc(...).stats`` or equivalent).
    graph:
        The graph the trace came from (supplies adjacency nnz and n).
    p:
        Hypothetical processor count.
    cost:
        Machine constants (defaults to :class:`CostParams` defaults).
    memory_words:
        Optional per-rank memory budget filtering plans.
    policy:
        Restrict plan selection (e.g. ``Square2DPolicy`` to model CombBLAS).
        Default: full §5.2 search per product.
    """
    cost = cost or CostParams()
    n = graph.n
    nnz_adj = graph.nnz_adjacency

    if policy is None:
        plans = enumerate_plans(p)
    else:
        from repro.machine.machine import Machine

        probe = Machine(p, cost=cost)
        plans = [policy.select(probe, 1, 1, 1, 1, 1)]

    comm_s = 0.0
    compute_s = 0.0
    words = 0.0
    msgs = 0.0

    # adjacency replication charged once (amortized over all products);
    # a single rank holds everything already, so p = 1 communicates nothing
    import math

    if p > 1:
        lg = math.ceil(math.log2(p))
        words += 2.0 * nnz_adj / p
        msgs += 2.0 * lg
        comm_s += 2.0 * (nnz_adj / p) * cost.beta + 2.0 * lg * cost.alpha

    n_products = sum(len(b.iterations) for b in stats.batches)
    compute_s += n_products * cost.product_overhead

    for batch in stats.batches:
        nb = batch.sources
        for it in batch.iterations:
            est = _best_estimate(
                p,
                nb,
                n,
                n,
                it.frontier_nnz,
                nnz_adj,
                it.product_nnz,
                it.ops,
                cost,
                memory_words,
                plans,
            )
            comm_s += est.msgs * cost.alpha + est.words * cost.beta
            compute_s += est.flops / cost.compute_rate
            words += est.words
            msgs += est.msgs

    return ModeledRun(
        p=p,
        seconds=comm_s + compute_s,
        comm_seconds=comm_s,
        compute_seconds=compute_s,
        words=words,
        msgs=msgs,
    )
