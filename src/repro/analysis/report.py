"""Plain-text and markdown table rendering for benchmark reports."""

from __future__ import annotations

import os
from typing import Sequence

__all__ = ["format_table", "write_markdown_table"]


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Aligned fixed-width table (the benches print these)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(vals):
        return "  ".join(v.rjust(w) for v, w in zip(vals, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def write_markdown_table(
    path: str | os.PathLike,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    append: bool = True,
) -> None:
    """Write a markdown table section (used to build EXPERIMENTS.md)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    lines = [f"\n## {title}\n"]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for r in cells:
        lines.append("| " + " | ".join(r) + " |")
    mode = "a" if append else "w"
    with open(path, mode) as fh:
        fh.write("\n".join(lines) + "\n")
