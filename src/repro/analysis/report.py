"""Plain-text and markdown table rendering for benchmark reports."""

from __future__ import annotations

import os
from typing import Sequence

__all__ = [
    "format_table",
    "write_markdown_table",
    "trace_attribution",
    "format_trace_report",
    "cache_attribution",
    "format_cache_report",
    "overload_attribution",
    "format_overload_report",
    "approx_attribution",
    "format_approx_report",
    "memory_attribution",
    "format_memory_report",
]


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.4g}"
    return str(v)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Aligned fixed-width table (the benches print these)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    def line(vals):
        return "  ".join(v.rjust(w) for v, w in zip(vals, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def write_markdown_table(
    path: str | os.PathLike,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    append: bool = True,
) -> None:
    """Write a markdown table section (used to build EXPERIMENTS.md)."""
    cells = [[_fmt(v) for v in row] for row in rows]
    lines = [f"\n## {title}\n"]
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for r in cells:
        lines.append("| " + " | ".join(r) + " |")
    mode = "a" if append else "w"
    with open(path, mode) as fh:
        fh.write("\n".join(lines) + "\n")


def trace_attribution(tracer, ledger) -> list[dict]:
    """Attribute critical-path words and modeled time to span categories.

    One row per collective category (``bcast``, ``reduce``, ``replicate``,
    ``redistribute``, ...) found in the trace's collective spans, carrying
    the summed modeled time, word volume, and event count, plus each
    category's share of the ledger's critical-path modeled time — the §7.4
    breakdown ("where do the words and the time go?").
    """
    by_cat: dict[str, dict] = {}
    for sp in tracer.spans:
        if sp.cat != "collective":
            continue
        row = by_cat.setdefault(
            sp.name, {"category": sp.name, "events": 0, "seconds": 0.0, "words": 0.0}
        )
        row["events"] += 1
        row["seconds"] += sp.modeled_dur or 0.0
        row["words"] += float(sp.args.get("volume_words", 0.0))
    total_time = max(float(ledger.critical_time()), 1e-30)
    rows = sorted(by_cat.values(), key=lambda r: -r["seconds"])
    for row in rows:
        row["time_share"] = row["seconds"] / total_time
    return rows


def cache_attribution(metrics) -> list[dict]:
    """Per-algorithm serve-cache event totals from a metrics registry.

    Reads the ``serve.cache.{hit,miss,invalidate}`` counter families the
    serving layer emits (see :mod:`repro.serve.cache`); one row per
    algorithm label plus the derived hit rate.  Empty when no cache events
    were recorded (e.g. a plain ``repro trace`` run with no service).
    """
    algorithms: set[str] = set()
    for name in ("serve.cache.hit", "serve.cache.miss", "serve.cache.invalidate"):
        for labels in metrics.series(name):
            algorithms.add(dict(labels).get("algorithm", ""))
    rows = []
    for alg in sorted(algorithms):
        hits = metrics.get_count("serve.cache.hit", algorithm=alg)
        misses = metrics.get_count("serve.cache.miss", algorithm=alg)
        invalidated = metrics.get_count("serve.cache.invalidate", algorithm=alg)
        total = hits + misses
        rows.append(
            {
                "algorithm": alg,
                "hits": int(hits),
                "misses": int(misses),
                "invalidated": int(invalidated),
                "hit_rate": hits / total if total else 0.0,
            }
        )
    return rows


def format_cache_report(metrics) -> str:
    """Render :func:`cache_attribution` as an aligned text table.

    Returns the empty string when the registry holds no cache events, so
    callers can print it unconditionally.
    """
    rows = cache_attribution(metrics)
    if not rows:
        return ""
    table = format_table(
        ["algorithm", "hits", "misses", "invalidated", "hit rate"],
        [
            [
                r["algorithm"],
                r["hits"],
                r["misses"],
                r["invalidated"],
                f"{100.0 * r['hit_rate']:.1f}%",
            ]
            for r in rows
        ],
    )
    return "cache events (serve.cache.*):\n" + table


#: the labeled overload counter families the serving layer emits
_OVERLOAD_COUNTERS: tuple[tuple[str, str], ...] = (
    ("serve.overload.shed", "reason"),
    ("serve.overload.degraded", "algorithm"),
    ("serve.overload.stale", "algorithm"),
    ("serve.overload.infeasible", "algorithm"),
    ("serve.overload.breaker_fastfail", "algorithm"),
    ("serve.overload.breaker", "state"),
    ("serve.overload.state", "transition"),
    ("serve.overload.dispatcher_restart", ""),
    ("serve.overload.dispatcher_stall", ""),
)


def overload_attribution(metrics) -> list[dict]:
    """Per-label overload event totals from a metrics registry.

    Reads the ``serve.overload.*`` counter families the admission
    controller, watermark governor, circuit breaker, and watchdog emit
    (see :mod:`repro.serve.overload`); one row per (event, label) pair.
    Empty when no overload events were recorded — a service that never
    came under pressure produces an empty table, not a zero-filled one.
    """
    rows = []
    for name, label_key in _OVERLOAD_COUNTERS:
        short = name.removeprefix("serve.overload.")
        for labels in metrics.series(name):
            label = dict(labels).get(label_key, "") if label_key else ""
            count = metrics.get_count(name, **dict(labels))
            if count:
                rows.append({"event": short, "label": label, "count": int(count)})
    return rows


def format_overload_report(metrics) -> str:
    """Render :func:`overload_attribution` as an aligned text table.

    Returns the empty string when the registry holds no overload events,
    so callers can print it unconditionally (mirrors
    :func:`format_cache_report`).
    """
    rows = overload_attribution(metrics)
    if not rows:
        return ""
    table = format_table(
        ["event", "label", "count"],
        [[r["event"], r["label"], r["count"]] for r in rows],
    )
    return "overload events (serve.overload.*):\n" + table


def approx_attribution(metrics) -> list[dict]:
    """Per-algorithm adaptive-sampling totals from a metrics registry.

    Reads the ``approx.*`` counter/gauge families the adaptive sampler
    emits (see :func:`repro.core.approx.adaptive_bc`): batches executed,
    samples drawn, the last certified confidence width, and how many runs
    converged versus hit their sample cap.  One row per algorithm label;
    empty when no sampling ran under an active obs session.
    """
    algorithms: set[str] = set()
    for name in ("approx.batches", "approx.samples", "approx.runs"):
        for labels in metrics.series(name):
            algorithms.add(dict(labels).get("algorithm", ""))
    rows = []
    for alg in sorted(algorithms):
        converged = metrics.get_count("approx.runs", algorithm=alg, converged="true")
        capped = metrics.get_count("approx.runs", algorithm=alg, converged="false")
        rows.append(
            {
                "algorithm": alg,
                "runs": int(converged + capped),
                "converged": int(converged),
                "batches": int(metrics.get_count("approx.batches", algorithm=alg)),
                "samples": int(metrics.get_count("approx.samples", algorithm=alg)),
                "last_width": metrics.get_gauge("approx.width", algorithm=alg),
            }
        )
    return rows


def format_approx_report(metrics) -> str:
    """Render :func:`approx_attribution` as an aligned text table.

    Returns the empty string when the registry holds no sampling events,
    so callers can print it unconditionally (mirrors
    :func:`format_cache_report`).
    """
    rows = approx_attribution(metrics)
    if not rows:
        return ""
    table = format_table(
        ["algorithm", "runs", "converged", "batches", "samples", "last width"],
        [
            [
                r["algorithm"],
                r["runs"],
                r["converged"],
                r["batches"],
                r["samples"],
                "-" if r["last_width"] is None else r["last_width"],
            ]
            for r in rows
        ],
    )
    return "adaptive sampling (approx.*):\n" + table


def memory_attribution(metrics) -> list[dict]:
    """Per-site memory-pressure event totals from a metrics registry.

    Reads the ``memory.*`` counter families the spill store, memory
    manager, and OOM ladder emit (:mod:`repro.memory`): spill/unspill/stage
    traffic with word volumes, torn writes, relief evictions, and the
    ladder rungs taken.  Empty when the run never came under memory
    pressure.
    """
    rows: list[dict] = []
    combos: set[tuple[str, str]] = set()
    for name in ("memory.spill.events", "memory.spill.words"):
        for labels in metrics.series(name):
            d = dict(labels)
            combos.add((d.get("op", ""), d.get("site", "")))
    for op, site in sorted(combos):
        rows.append(
            {
                "event": f"spill.{op}",
                "site": site,
                "count": int(
                    metrics.get_count("memory.spill.events", op=op, site=site)
                ),
                "words": int(
                    metrics.get_count("memory.spill.words", op=op, site=site)
                ),
            }
        )
    for name, prefix in (
        ("memory.spill.torn", "spill.torn"),
        ("memory.reliefs", "relief"),
    ):
        for labels in sorted(metrics.series(name)):
            site = dict(labels).get("site", "")
            rows.append(
                {
                    "event": prefix,
                    "site": site,
                    "count": int(metrics.get_count(name, site=site)),
                    "words": 0,
                }
            )
    for labels in sorted(metrics.series("memory.ladder")):
        d = dict(labels)
        rows.append(
            {
                "event": f"ladder.{d.get('rung', '')}",
                "site": d.get("site", ""),
                "count": int(
                    metrics.get_count(
                        "memory.ladder",
                        rung=d.get("rung", ""),
                        site=d.get("site", ""),
                    )
                ),
                "words": 0,
            }
        )
    return rows


def format_memory_report(metrics) -> str:
    """Render :func:`memory_attribution` as an aligned text table.

    Returns the empty string when the registry holds no memory-pressure
    events, so callers can print it unconditionally.
    """
    rows = memory_attribution(metrics)
    if not rows:
        return ""
    table = format_table(
        ["event", "site", "count", "words"],
        [[r["event"], r["site"], r["count"], r["words"]] for r in rows],
    )
    return "memory pressure (memory.*):\n" + table


def format_trace_report(tracer, ledger) -> str:
    """Render :func:`trace_attribution` as an aligned text table."""
    rows = trace_attribution(tracer, ledger)
    if not rows:
        return "(no collective spans recorded)"
    table = format_table(
        ["category", "events", "modeled time (s)", "volume (words)", "% of critical"],
        [
            [
                r["category"],
                r["events"],
                r["seconds"],
                r["words"],
                f"{100.0 * r['time_share']:.1f}%",
            ]
            for r in rows
        ],
    )
    comm = sum(r["seconds"] for r in rows)
    total = float(ledger.critical_time())
    footer = (
        f"\ncollective time {comm:.3e}s of {total:.3e}s modeled critical path "
        f"({100.0 * comm / max(total, 1e-30):.1f}%); remainder is local compute "
        "and per-product overhead"
    )
    return table + footer
