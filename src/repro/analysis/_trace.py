"""A recording engine: sequential execution that logs every product.

Used to trace the CombBLAS-style baseline (whose result object only keeps
aggregate counters) in the same per-product shape MFBC's stats use, so both
algorithms can be priced by the same hybrid performance model.
"""

from __future__ import annotations

from repro.core.engine import SequentialEngine
from repro.core.stats import IterationStats

__all__ = ["RecordingEngine"]


class RecordingEngine(SequentialEngine):
    """Sequential engine that appends an IterationStats per product."""

    def __init__(self) -> None:
        self.records: list[IterationStats] = []

    def spgemm(self, a, b, spec):
        mat, ops = super().spgemm(a, b, spec)
        self.records.append(
            IterationStats(
                phase=spec.name, frontier_nnz=a.nnz, product_nnz=mat.nnz, ops=ops
            )
        )
        return mat, ops
