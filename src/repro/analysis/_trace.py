"""A recording engine: sequential execution traced through the span stream.

Used to trace the CombBLAS-style baseline (whose result object only keeps
aggregate counters) in the same per-product shape MFBC's stats use, so both
algorithms can be priced by the same hybrid performance model.

This is a thin adapter over :mod:`repro.obs`: each product runs inside a
private capture session (so an outer tracing session, if any, is not
disturbed), and ``records`` rebuilds the legacy ``IterationStats`` list from
the recorded ``spgemm`` spans.
"""

from __future__ import annotations

from repro.core.engine import SequentialEngine
from repro.core.stats import IterationStats
from repro.obs import api as obs
from repro.obs.metrics import Metrics
from repro.obs.tracer import Tracer

__all__ = ["RecordingEngine"]


class RecordingEngine(SequentialEngine):
    """Sequential engine whose products land in a private span stream."""

    def __init__(self) -> None:
        self._tracer = Tracer()
        self._metrics = Metrics()

    def spgemm(self, a, b, spec, *, mask=None, mask_complement=False):
        with obs.use(tracer=self._tracer, metrics=self._metrics):
            return super().spgemm(
                a, b, spec, mask=mask, mask_complement=mask_complement
            )

    @property
    def records(self) -> list[IterationStats]:
        """Per-product stats rebuilt from the captured ``spgemm`` spans."""
        return [
            IterationStats(
                phase=sp.args["phase"],
                frontier_nnz=sp.args["frontier_nnz"],
                product_nnz=sp.args["product_nnz"],
                ops=sp.args["ops"],
            )
            for sp in self._tracer.spans
            if sp.cat == "spgemm"
        ]
