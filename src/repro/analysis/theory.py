"""Closed-form theory results from §5.3 — Theorem 5.1 and its discussion.

These functions evaluate the paper's analytical claims so the theory bench
can print the comparison tables (§5.3.2–§5.3.4): MFBC versus APSP bandwidth,
the latency expression, memory footprints, and the strong-scaling range.
All results are in model units (words, messages) — multiply by β/α to get
seconds on a specific machine.
"""

from __future__ import annotations

import math

__all__ = [
    "mfbc_bandwidth_words",
    "mfbc_latency_messages",
    "mfbc_memory_words",
    "apsp_bandwidth_words",
    "apsp_memory_words",
    "strong_scaling_range",
    "best_replication_factor",
]


def mfbc_bandwidth_words(n: float, m: float, p: float, c: float = 1.0) -> float:
    """Theorem 5.1 bandwidth: ``W = O(n²/√(cp) + c·m/p)`` words.

    (The ``n√m/p^{2/3}`` headline form is this expression at the optimal
    ``c = p^{1/3}·n²/m``.)
    """
    return n * n / math.sqrt(c * p) + c * m / p


def best_replication_factor(n: float, m: float, p: float) -> float:
    """The c minimizing Theorem 5.1's bandwidth, clamped to [1, p].

    Setting ``d/dc [n²/√(cp) + c·m/p] = 0`` gives
    ``c* = (n²·√p / (2m))^{2/3}`` — the exact minimizer of the expression;
    the paper quotes the asymptotically equivalent balance point
    ``p^{1/3}·n²/m`` (equal up to constants when the two terms meet).
    """
    c = (n * n * math.sqrt(p) / (2.0 * m)) ** (2.0 / 3.0)
    return min(max(c, 1.0), p)


def mfbc_latency_messages(
    n: float, m: float, p: float, c: float = 1.0, d: float | None = None
) -> float:
    """Theorem 5.1 latency: ``S = O(d·(n²/m)·√(p/c³)·log p)`` messages.

    ``d`` is the graph diameter (defaults to the ``log n`` of low-diameter
    graphs the paper targets).
    """
    if d is None:
        d = max(math.log2(max(n, 2)), 1.0)
    return d * (n * n / m) * math.sqrt(p / c**3) * max(math.log2(max(p, 2)), 1.0)


def mfbc_memory_words(n: float, m: float, p: float, c: float = 1.0) -> float:
    """MFBC per-processor memory: ``M = O(c·m/p)`` words (§5.3)."""
    return c * m / p


def apsp_bandwidth_words(n: float, p: float, c: float = 1.0) -> float:
    """Best-known APSP bandwidth (Tiskin path doubling, §5.3.2):
    ``O(n²/√(cp))`` words using ``O(c·n²/p)`` memory, c ∈ [1, p^{1/3}]."""
    return n * n / math.sqrt(c * p)


def apsp_memory_words(n: float, p: float, c: float = 1.0) -> float:
    """APSP per-processor memory: ``Ω(c·n²/p)`` words (§5.3.2)."""
    return c * n * n / p


def strong_scaling_range(n: float, m: float, p0: float) -> tuple[float, float]:
    """§5.3.4: from a base feasible ``p0`` (with ``M = O(m/p0)``), MFBC
    strong-scales perfectly in *all* costs up to ``p0^{3/2}·n²/m``, and in
    bandwidth alone up to ``p0^{3/2}·n³/m^{3/2}``.

    Returns ``(all_costs_limit, bandwidth_limit)``.
    """
    all_costs = (p0 ** 1.5) * n * n / m
    bandwidth = (p0 ** 1.5) * (n ** 3) / (m ** 1.5)
    return all_costs, bandwidth
