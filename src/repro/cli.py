"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``bc``        exact or sampled betweenness centrality of an edge-list graph
``generate``  write a synthetic graph (R-MAT / uniform / SNAP stand-in)
``simulate``  run distributed MFBC on a simulated machine, print the ledger
``trace``     like ``simulate``, capturing a Chrome trace + phase timeline
``serve``     persistent BC-as-a-service HTTP front end over a warm machine
``info``      structural statistics of a graph file

Examples
--------
    python -m repro generate rmat --scale 10 --degree 8 -o g.txt
    python -m repro bc g.txt --top 10
    python -m repro bc g.txt --samples 128 --seed 0
    python -m repro bc g.txt --epsilon 0.05 --delta 0.1
    python -m repro simulate g.txt --p 16 --policy auto --batch 64
    python -m repro simulate g.txt --p 16 --executor thread
    python -m repro simulate g.txt --p 16 --faults seed:3,crash:0.05,limit:2 \\
        --checkpoint run.ckpt.json
    python -m repro trace g.txt --p 16 --executor thread:8 -o trace.json
    python -m repro trace g.txt --p 16 --faults seed:0,straggle:0.2
    python -m repro serve g.txt --p 16 --port 8734 --elastic replica
    python -m repro info g.txt

Fault injection (``--faults`` / ``$REPRO_FAULTS``) and per-batch
checkpointing (``--checkpoint``; re-running the same command resumes from
the file if it exists) are documented in ``docs/robustness.md``.
Correctness checking (``--check`` / ``$REPRO_CHECK``: ``cheap``, ``full``,
or ``sample:N``) is documented in ``docs/testing.md``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MFBC betweenness centrality (SC'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_bc = sub.add_parser("bc", help="compute betweenness centrality")
    p_bc.add_argument("graph", help="edge-list file (src dst [weight])")
    p_bc.add_argument("--directed", action="store_true")
    p_bc.add_argument("--batch", type=int, default=None, help="batch size nb")
    p_bc.add_argument(
        "--samples", type=int, default=None, help="sampled sources (approximate BC)"
    )
    p_bc.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="adaptive sampling: absolute error target on normalized BC; "
        "samples until the empirical-Bernstein bound certifies it",
    )
    p_bc.add_argument(
        "--delta",
        type=float,
        default=0.1,
        metavar="DELTA",
        help="adaptive sampling: failure probability for the (ε, δ) bound",
    )
    p_bc.add_argument(
        "--max-samples",
        type=int,
        default=None,
        help="adaptive sampling: hard cap on drawn sources",
    )
    p_bc.add_argument("--seed", type=int, default=0)
    p_bc.add_argument("--top", type=int, default=10, help="print this many vertices")
    p_bc.add_argument("--normalized", action="store_true")
    p_bc.add_argument("-o", "--output", default=None, help="write all scores here")
    p_bc.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint scores after every batch; resumes from PATH if it "
        "already holds a compatible checkpoint (.npz binary, else JSON)",
    )
    p_bc.add_argument(
        "--kernel",
        choices=["generic", "auto", "fast"],
        default=None,
        help="SpGEMM kernel-dispatch mode (see docs/performance_model.md); "
        "default: $REPRO_KERNEL or auto",
    )

    p_gen = sub.add_parser("generate", help="generate a synthetic graph")
    p_gen.add_argument(
        "family", choices=["rmat", "uniform", "frd", "ork", "ljm", "cit"]
    )
    p_gen.add_argument("--scale", type=int, default=10, help="log2 vertices (rmat)")
    p_gen.add_argument("--n", type=int, default=1024, help="vertices (uniform)")
    p_gen.add_argument("--degree", type=float, default=8.0)
    p_gen.add_argument("--directed", action="store_true")
    p_gen.add_argument("--weights", nargs=2, type=int, metavar=("LOW", "HIGH"))
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", required=True)

    p_sim = sub.add_parser(
        "simulate", help="distributed MFBC on the simulated machine"
    )
    p_sim.add_argument("graph")
    p_sim.add_argument("--directed", action="store_true")
    p_sim.add_argument("--p", type=int, default=16, help="simulated ranks")
    p_sim.add_argument(
        "--policy", choices=["auto", "ca", "square2d"], default="auto"
    )
    p_sim.add_argument("--c", type=int, default=1, help="replication (ca policy)")
    p_sim.add_argument("--batch", type=int, default=64)
    p_sim.add_argument("--batches", type=int, default=1, help="batches to run")
    p_sim.add_argument(
        "--executor",
        default=None,
        metavar="BACKEND[:N]",
        help="local execution backend (serial/thread/process, e.g. thread:8);"
        " default: $REPRO_EXECUTOR or serial",
    )
    p_sim.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault-injection plan, e.g. seed:3,crash:0.05,limit:2 "
        "(see docs/robustness.md); default: $REPRO_FAULTS or none",
    )
    p_sim.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint scores after every batch; resumes from PATH if it "
        "already holds a compatible checkpoint (.npz binary, else JSON)",
    )
    p_sim.add_argument(
        "--check",
        default=None,
        metavar="LEVEL",
        help="correctness checking: cheap, full, or sample:N "
        "(see docs/testing.md); default: $REPRO_CHECK or off",
    )
    p_sim.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="modeled critical-path time budget; the run aborts with "
        "DeadlineExceeded once the clock passes it",
    )
    p_sim.add_argument(
        "--elastic",
        default=None,
        metavar="POLICY",
        help="in-flight rank-failure recovery: replica, replica:STRIDE, or "
        "source (see docs/robustness.md); default: $REPRO_ELASTIC or off",
    )
    p_sim.add_argument(
        "--kernel",
        choices=["generic", "auto", "fast"],
        default=None,
        help="SpGEMM kernel-dispatch mode (see docs/performance_model.md); "
        "default: $REPRO_KERNEL or auto",
    )
    p_sim.add_argument(
        "--memory-words",
        type=int,
        default=None,
        metavar="WORDS",
        help="per-rank memory budget; under pressure the OOM ladder shrinks "
        "batches, spills cold blocks, and drops replica redundancy "
        "(docs/robustness.md); default: $REPRO_MEMORY or unlimited",
    )
    p_sim.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="directory for spilled block segments; default: $REPRO_SPILL_DIR "
        "or a private temporary directory",
    )

    p_tr = sub.add_parser(
        "trace",
        help="traced distributed MFBC: Chrome trace JSON + phase timeline",
    )
    p_tr.add_argument("graph")
    p_tr.add_argument("--directed", action="store_true")
    p_tr.add_argument("--p", type=int, default=16, help="simulated ranks")
    p_tr.add_argument(
        "--policy", choices=["auto", "ca", "square2d"], default="auto"
    )
    p_tr.add_argument("--c", type=int, default=1, help="replication (ca policy)")
    p_tr.add_argument("--batch", type=int, default=64)
    p_tr.add_argument("--batches", type=int, default=1, help="batches to run")
    p_tr.add_argument(
        "-o", "--output", default="trace.json",
        help="Chrome trace_event JSON output (load in ui.perfetto.dev)",
    )
    p_tr.add_argument(
        "--jsonl", default=None, help="also write flat span/metric JSONL here"
    )
    p_tr.add_argument(
        "--executor",
        default=None,
        metavar="BACKEND[:N]",
        help="local execution backend (serial/thread/process, e.g. thread:8);"
        " default: $REPRO_EXECUTOR or serial",
    )
    p_tr.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault-injection plan, e.g. seed:3,crash:0.05,limit:2 "
        "(see docs/robustness.md); default: $REPRO_FAULTS or none",
    )
    p_tr.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="checkpoint scores after every batch; resumes from PATH if it "
        "already holds a compatible checkpoint (.npz binary, else JSON)",
    )
    p_tr.add_argument(
        "--check",
        default=None,
        metavar="LEVEL",
        help="correctness checking: cheap, full, or sample:N "
        "(see docs/testing.md); default: $REPRO_CHECK or off",
    )
    p_tr.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="modeled critical-path time budget; the run aborts with "
        "DeadlineExceeded once the clock passes it",
    )
    p_tr.add_argument(
        "--elastic",
        default=None,
        metavar="POLICY",
        help="in-flight rank-failure recovery: replica, replica:STRIDE, or "
        "source (see docs/robustness.md); default: $REPRO_ELASTIC or off",
    )
    p_tr.add_argument(
        "--kernel",
        choices=["generic", "auto", "fast"],
        default=None,
        help="SpGEMM kernel-dispatch mode (see docs/performance_model.md); "
        "default: $REPRO_KERNEL or auto",
    )
    p_tr.add_argument(
        "--memory-words",
        type=int,
        default=None,
        metavar="WORDS",
        help="per-rank memory budget; under pressure the OOM ladder shrinks "
        "batches, spills cold blocks, and drops replica redundancy "
        "(docs/robustness.md); default: $REPRO_MEMORY or unlimited",
    )
    p_tr.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="directory for spilled block segments; default: $REPRO_SPILL_DIR "
        "or a private temporary directory",
    )

    p_srv = sub.add_parser(
        "serve",
        help="persistent BC-as-a-service HTTP/JSON front end (docs/serving.md)",
    )
    p_srv.add_argument("graph")
    p_srv.add_argument("--directed", action="store_true")
    p_srv.add_argument("--p", type=int, default=16, help="simulated ranks")
    p_srv.add_argument(
        "--policy", choices=["auto", "ca", "square2d"], default="auto"
    )
    p_srv.add_argument("--c", type=int, default=1, help="replication (ca policy)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8734, help="0 picks a free port")
    p_srv.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="maximum coalesced sweep width k",
    )
    p_srv.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="linger after the first queued query so concurrent requests "
        "coalesce into one sweep",
    )
    p_srv.add_argument(
        "--cache-capacity", type=int, default=4096, help="score-cache LRU entries"
    )
    p_srv.add_argument(
        "--executor",
        default=None,
        metavar="BACKEND[:N]",
        help="local execution backend (serial/thread/process, e.g. thread:8);"
        " default: $REPRO_EXECUTOR or serial",
    )
    p_srv.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="fault-injection plan (see docs/robustness.md); "
        "default: $REPRO_FAULTS or none",
    )
    p_srv.add_argument(
        "--check",
        default=None,
        metavar="LEVEL",
        help="correctness checking: cheap, full, or sample:N "
        "(see docs/testing.md); default: $REPRO_CHECK or off",
    )
    p_srv.add_argument(
        "--elastic",
        default=None,
        metavar="POLICY",
        help="in-flight rank-failure recovery: replica, replica:STRIDE, or "
        "source (see docs/robustness.md); default: $REPRO_ELASTIC or off",
    )
    p_srv.add_argument(
        "--kernel",
        choices=["generic", "auto", "fast"],
        default=None,
        help="SpGEMM kernel-dispatch mode (see docs/performance_model.md); "
        "default: $REPRO_KERNEL or auto",
    )
    p_srv.add_argument(
        "--memory-words",
        type=int,
        default=None,
        metavar="WORDS",
        help="per-rank memory budget; memory-infeasible queries are rejected "
        "up front and the OOM ladder degrades pressured sweeps "
        "(docs/robustness.md); default: $REPRO_MEMORY or unlimited",
    )
    p_srv.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="directory for spilled block segments; default: $REPRO_SPILL_DIR "
        "or a private temporary directory",
    )
    p_srv.add_argument(
        "--verbose", action="store_true", help="log HTTP requests to stderr"
    )
    p_srv.add_argument(
        "--max-queued",
        type=int,
        default=1024,
        help="admission bound: queued query count (docs/serving.md overload)",
    )
    p_srv.add_argument(
        "--max-queued-seconds",
        type=float,
        default=None,
        metavar="SECONDS",
        help="admission bound: total modeled seconds of queued work "
        "(cost-aware; default unbounded)",
    )
    p_srv.add_argument(
        "--max-queued-memory-words",
        type=float,
        default=None,
        metavar="WORDS",
        help="admission bound: total modeled peak words of queued work "
        "(memory-aware; default unbounded)",
    )
    p_srv.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="QPS",
        help="per-client token-bucket refill rate (X-Client-Id principal)",
    )
    p_srv.add_argument(
        "--rate-burst",
        type=float,
        default=20.0,
        metavar="N",
        help="per-client burst capacity",
    )
    p_srv.add_argument(
        "--brownout-algorithm",
        choices=["approx_bc", "adaptive_bc"],
        default="approx_bc",
        help="what exact bc degrades to under brownout: fixed-pivot "
        "sampling or the (ε, δ)-bounded adaptive sampler",
    )
    p_srv.add_argument(
        "--brownout-epsilon",
        type=float,
        default=0.1,
        help="error target when brownout downgrades to adaptive_bc",
    )
    p_srv.add_argument(
        "--brownout-delta",
        type=float,
        default=0.1,
        help="failure probability when brownout downgrades to adaptive_bc",
    )
    p_srv.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="graceful-drain budget on SIGTERM/shutdown before queued "
        "work is abandoned",
    )

    p_info = sub.add_parser("info", help="graph statistics")
    p_info.add_argument("graph")
    p_info.add_argument("--directed", action="store_true")

    p_ver = sub.add_parser(
        "verify",
        help="self-check: MFBC vs Brandes vs CombBLAS on sampled sources",
    )
    p_ver.add_argument("graph")
    p_ver.add_argument("--directed", action="store_true")
    p_ver.add_argument("--samples", type=int, default=8)
    p_ver.add_argument("--seed", type=int, default=0)
    p_ver.add_argument(
        "--p", type=int, default=4, help="also verify on a simulated machine"
    )
    p_ver.add_argument(
        "--check",
        default=None,
        metavar="LEVEL",
        help="correctness checking for the simulated run: cheap, full, or "
        "sample:N (see docs/testing.md); default: $REPRO_CHECK or off",
    )

    return parser


def _load(path: str, directed: bool):
    from repro.graphs import read_edgelist

    return read_edgelist(path, directed=directed)


def _checkpoint_kwargs(path: str | None) -> dict:
    """``--checkpoint PATH`` → mfbc kwargs with resume-if-present semantics."""
    if path is None:
        return {}
    from repro.faults import resolve_checkpoint_store

    store = resolve_checkpoint_store(path)
    state = store.load()
    if state is not None:
        print(
            f"resuming from checkpoint {path} "
            f"(batches completed: {state.batch_index})"
        )
    return {"checkpoint": store, "resume_from": store}


def _cmd_bc(args) -> int:
    from repro.core import SequentialEngine, adaptive_bc, approximate_bc, mfbc

    g = _load(args.graph, args.directed)
    engine = (
        SequentialEngine(kernel=args.kernel) if args.kernel is not None else None
    )
    if args.epsilon is not None:
        if args.samples is not None:
            print("error: --samples and --epsilon are mutually exclusive")
            return 2
        res = adaptive_bc(
            g,
            epsilon=args.epsilon,
            delta=args.delta,
            seed=args.seed,
            batch_size=args.batch,
            max_samples=args.max_samples,
            engine=engine,
            **_checkpoint_kwargs(args.checkpoint),
        )
        scores = res.scores
        verdict = "converged" if res.converged else "hit sample cap"
        print(
            f"adaptive BC (ε={res.epsilon:g}, δ={res.delta:g}): {verdict} after "
            f"{res.samples_used} samples in {res.batches} batches "
            f"(final width {res.width:.4g}, {res.elapsed_seconds:.2f}s)"
        )
    elif args.samples is not None:
        scores = approximate_bc(
            g, args.samples, seed=args.seed, batch_size=args.batch, engine=engine
        )
        print(f"approximate BC from {args.samples} sampled sources")
    else:
        res = mfbc(
            g,
            batch_size=args.batch,
            engine=engine,
            **_checkpoint_kwargs(args.checkpoint),
        )
        scores = res.scores
        print(
            f"exact BC: {res.stats.total_multiplications} matmuls in "
            f"{res.elapsed_seconds:.2f}s"
        )
    if args.normalized:
        denom = (g.n - 1) * (g.n - 2)
        if denom > 0:
            scores = scores / denom
    top = np.argsort(scores)[::-1][: args.top]
    for v in top:
        print(f"{int(v)}\t{scores[v]:.6g}")
    if args.output:
        np.savetxt(args.output, scores)
        print(f"wrote {len(scores)} scores to {args.output}")
    return 0


def _cmd_generate(args) -> int:
    from repro.graphs import (
        rmat_graph,
        snap_standin,
        uniform_random_graph_nm,
        with_random_weights,
        write_edgelist,
    )

    if args.family == "rmat":
        g = rmat_graph(
            args.scale, int(args.degree), directed=args.directed, seed=args.seed
        )
    elif args.family == "uniform":
        g = uniform_random_graph_nm(
            args.n, args.degree, directed=args.directed, seed=args.seed
        )
    else:
        g = snap_standin(args.family, seed=args.seed)
    if args.weights:
        g = with_random_weights(g, args.weights[0], args.weights[1], seed=args.seed)
    write_edgelist(g, args.output)
    print(f"wrote {g} to {args.output}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.core import mfbc
    from repro.dist import DistributedEngine
    from repro.machine import Machine
    from repro.spgemm import PinnedPolicy, Square2DPolicy

    g = _load(args.graph, args.directed)
    machine = Machine(
        args.p,
        executor=args.executor,
        faults=args.faults,
        deadline=args.deadline,
        elastic=args.elastic,
        kernel=args.kernel,
        memory_words=args.memory_words,
        spill_dir=args.spill_dir,
    )
    policy = None
    if args.policy == "ca":
        policy = PinnedPolicy.ca_mfbc(args.p, args.c)
    elif args.policy == "square2d":
        policy = Square2DPolicy()
    engine = DistributedEngine(machine, policy=policy, check=args.check)
    res = mfbc(
        g,
        batch_size=args.batch,
        engine=engine,
        max_batches=args.batches,
        **_checkpoint_kwargs(args.checkpoint),
    )
    led = machine.ledger.snapshot()
    print(
        f"graph: {g}; p={args.p}; policy={args.policy}; "
        f"executor={machine.executor.name}"
    )
    print(f"sources processed : {res.stats.sources_processed}")
    print(f"matmuls           : {res.stats.total_multiplications}")
    print(f"critical words    : {led['words']:.0f}")
    print(f"critical messages : {led['msgs']:.0f}")
    print(f"modeled comm time : {led['comm_time'] * 1e3:.3f} ms")
    print(f"modeled total time: {led['time'] * 1e3:.3f} ms")
    if machine.faults is not None:
        print(
            f"faults            : {machine.faults.describe()} "
            f"({machine.faults.injected} injected, "
            f"{len(machine.faults.events)} events)"
        )
    _print_memory_summary(machine)
    _print_recovery_summary(machine)
    _print_check_summary(engine)
    return 0


def _print_memory_summary(machine) -> None:
    memory = getattr(machine, "memory", None)
    if memory is None:
        return
    snap = memory.snapshot()
    if not (snap.get("reliefs") or snap.get("spilled_blocks")):
        return
    peak = machine.memory_peak()
    budget = machine.memory_words
    budget_txt = f"{budget}" if budget is not None else "unlimited"
    print(
        f"memory            : peak {peak:.0f} words/rank "
        f"(budget {budget_txt}); {snap.get('reliefs', 0)} reliefs, "
        f"{snap.get('spilled_blocks', 0)} blocks spilled "
        f"({snap.get('spilled_words', 0)} words), "
        f"{snap.get('restored_blocks', 0)} restored, "
        f"{snap.get('torn_writes', 0)} torn writes"
    )


def _print_recovery_summary(machine) -> None:
    for rep in getattr(machine, "recoveries", ()):
        print(
            f"recovery          : p {rep.p_before} -> {rep.p_after}; "
            f"dead={list(rep.dead)} retired={list(rep.retired)}; "
            f"blocks repaired: {rep.blocks_replica} replica, "
            f"{rep.blocks_source} source "
            f"({rep.words_restored:.0f} words)"
        )


def _print_check_summary(engine) -> None:
    from repro.check import CheckedEngine

    if isinstance(engine, CheckedEngine):
        s = engine.stats
        print(
            f"checking          : {engine.config.describe()} "
            f"({s['validated']} validations, {s['replayed']} replays, "
            f"{s['mismatches']} mismatches)"
        )


def _cmd_trace(args) -> int:
    from repro import obs
    from repro.analysis.report import (
        format_approx_report,
        format_cache_report,
        format_memory_report,
        format_overload_report,
        format_trace_report,
    )
    from repro.core import mfbc
    from repro.dist import DistributedEngine
    from repro.machine import Machine
    from repro.spgemm import PinnedPolicy, Square2DPolicy

    g = _load(args.graph, args.directed)
    machine = Machine(
        args.p,
        executor=args.executor,
        faults=args.faults,
        deadline=args.deadline,
        elastic=args.elastic,
        kernel=args.kernel,
        memory_words=args.memory_words,
        spill_dir=args.spill_dir,
    )
    policy = None
    if args.policy == "ca":
        policy = PinnedPolicy.ca_mfbc(args.p, args.c)
    elif args.policy == "square2d":
        policy = Square2DPolicy()

    session = obs.enable()
    obs.set_modeled_clock(machine.ledger.critical_time)
    try:
        engine = DistributedEngine(machine, policy=policy, check=args.check)
        res = mfbc(
            g,
            batch_size=args.batch,
            engine=engine,
            max_batches=args.batches,
            **_checkpoint_kwargs(args.checkpoint),
        )
    finally:
        obs.disable()

    obs.write_chrome_trace(session.tracer, args.output)
    if args.jsonl:
        obs.write_jsonl(session.tracer, args.jsonl, metrics=session.metrics)

    print(
        f"graph: {g}; p={args.p}; policy={args.policy}; "
        f"executor={machine.executor.name}"
    )
    print(f"sources processed: {res.stats.sources_processed}")
    print()
    print(obs.render_timeline(session.tracer))
    print(format_trace_report(session.tracer, machine.ledger))
    if machine.executor.name != "serial":
        from repro.machine.executor import executor_skew_report

        print()
        print(executor_skew_report(session.metrics, machine))
    if machine.faults is not None:
        from repro.faults import format_fault_report

        print()
        print(format_fault_report(machine.faults))
    cache_table = format_cache_report(session.metrics)
    if cache_table:
        print()
        print(cache_table)
    overload_table = format_overload_report(session.metrics)
    if overload_table:
        print()
        print(overload_table)
    approx_table = format_approx_report(session.metrics)
    if approx_table:
        print()
        print(approx_table)
    memory_table = format_memory_report(session.metrics)
    if memory_table:
        print()
        print(memory_table)
    _print_memory_summary(machine)
    _print_recovery_summary(machine)
    _print_check_summary(engine)
    rec = obs.reconcile(session.tracer, machine.ledger)
    print(
        f"\nreconciliation: span modeled total "
        f"{rec['span_modeled_seconds']:.6e}s vs ledger critical path "
        f"{rec['ledger_seconds']:.6e}s "
        f"(relative error {rec['relative_error']:.2e})"
    )
    print(f"\nwrote Chrome trace to {args.output} (load in ui.perfetto.dev)")
    if args.jsonl:
        print(f"wrote span/metric JSONL to {args.jsonl}")
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro.serve import BCService, OverloadConfig, serve_http
    from repro.spgemm import PinnedPolicy, Square2DPolicy

    g = _load(args.graph, args.directed)
    policy = None
    if args.policy == "ca":
        policy = PinnedPolicy.ca_mfbc(args.p, args.c)
    elif args.policy == "square2d":
        policy = Square2DPolicy()
    overload = OverloadConfig(
        max_queued=args.max_queued,
        max_queued_seconds=args.max_queued_seconds,
        max_queued_memory_words=args.max_queued_memory_words,
        client_rate=args.rate_limit,
        client_burst=args.rate_burst,
        brownout_algorithm=args.brownout_algorithm,
        brownout_epsilon=args.brownout_epsilon,
        brownout_delta=args.brownout_delta,
    )
    service = BCService(
        g,
        p=args.p,
        policy=policy,
        check=args.check,
        executor=args.executor,
        faults=args.faults,
        elastic=args.elastic,
        kernel=args.kernel,
        memory_words=args.memory_words,
        spill_dir=args.spill_dir,
        max_batch=args.max_batch,
        batch_window=args.batch_window,
        cache_capacity=args.cache_capacity,
        overload=overload,
    )
    server = serve_http(service, args.host, args.port, verbose=args.verbose)
    print(f"serving {g} on {server.address} (p={args.p}, policy={args.policy})")
    print("endpoints: POST /v1/query, GET /v1/query/<id>, GET /v1/stats, "
          "POST /v1/graph, GET /v1/healthz")

    # SIGTERM → graceful drain: stop admitting, finish queued work within
    # --drain-timeout, then shut the HTTP front end down
    def _terminate(signum, frame):  # pragma: no cover - signal path
        print("\nSIGTERM: draining", flush=True)
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.shutdown()
        service.close(drain_timeout=args.drain_timeout)
        stats = service.stats()
        print(
            f"served {stats['completed']} queries in {stats['batches']} sweeps "
            f"(coalescing factor {stats['coalescing_factor']:.2f}, "
            f"cache hit-rate {stats['cache']['hit_rate']:.1%}); "
            f"{stats['shed']} shed, {stats['degraded']} degraded"
        )
    return 0


def _cmd_info(args) -> int:
    g = _load(args.graph, args.directed)
    print(f"name      : {g.name or '(unnamed)'}")
    print(f"vertices  : {g.n}")
    print(f"edges     : {g.m}")
    print(f"directed  : {g.directed}")
    print(f"weighted  : {g.weighted}")
    print(f"avg degree: {g.average_degree():.2f}")
    print(f"max degree: {g.max_degree()}")
    print(f"diameter  : {g.diameter_hops()} hops")
    return 0


def _cmd_verify(args) -> int:
    import numpy as np

    from repro.baselines import brandes_bc, combblas_bc
    from repro.core import mfbc
    from repro.dist import DistributedEngine
    from repro.machine import Machine
    from repro.utils.rng import as_rng

    g = _load(args.graph, args.directed)
    rng = as_rng(args.seed)
    sources = rng.choice(g.n, size=min(args.samples, g.n), replace=False)
    checks: list[tuple[str, bool]] = []

    ref = brandes_bc(g, sources=sources)
    seq = mfbc(g, sources=sources).scores
    checks.append(("MFBC (sequential) == Brandes", np.allclose(seq, ref, atol=1e-6)))

    if not g.weighted:
        cb = combblas_bc(g, sources=sources).scores
        checks.append(("CombBLAS-style == Brandes", np.allclose(cb, ref, atol=1e-6)))

    if args.p > 1:
        eng = DistributedEngine(Machine(args.p), check=args.check)
        dist = mfbc(g, sources=sources, engine=eng).scores
        checks.append(
            (f"MFBC (simulated p={args.p}) == sequential",
             np.allclose(dist, seq, atol=1e-6))
        )
        _print_check_summary(eng)

    ok = True
    for label, passed in checks:
        print(f"{'PASS' if passed else 'FAIL'}  {label}")
        ok &= passed
    print("verification", "PASSED" if ok else "FAILED")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "bc": _cmd_bc,
        "generate": _cmd_generate,
        "simulate": _cmd_simulate,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "info": _cmd_info,
        "verify": _cmd_verify,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
