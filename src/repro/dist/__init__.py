"""Distributed matrices on the simulated machine.

:class:`~repro.dist.distmat.DistMat` is a block-distributed sparse matrix
over a 2D facet of a processor grid, mirroring CTF's distributed tensors:
blocks are plain :class:`~repro.sparse.SpMat` instances held in per-rank
stores, and every movement (scatter, gather, redistribution) goes through
the machine's collectives so the α-β ledger sees the real traffic.

:class:`~repro.dist.engine.DistributedEngine` implements the MFBC engine
protocol on top: generalized products run through the CTF-style algorithm
selector in :mod:`repro.spgemm`.
"""

from repro.dist.distmat import DistMat, even_splits
from repro.dist.engine import DistributedEngine

__all__ = ["DistMat", "even_splits", "DistributedEngine"]
