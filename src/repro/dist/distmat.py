"""Block-distributed sparse matrices.

A :class:`DistMat` assigns a ``pr × pc`` blocking of an ``nrows × ncols``
matrix onto a 2D array of machine ranks.  Blocks are node-local
:class:`~repro.sparse.SpMat` matrices in *local* coordinates.  Elementwise
operations (the CTF ``Transform``/``sparsify``/summation surface that MFBC's
frontier logic uses) act block-by-block and are communication-free whenever
the operands are co-distributed — the engine maintains that invariant.

The paper's load-balance assumption (§5.2, balls-into-bins after random
vertex relabeling) is what makes these oblivious even splits balanced.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Callable

import numpy as np

from repro.algebra.fields import FieldArray
from repro.algebra.monoid import Monoid
from repro.machine.machine import Machine
from repro.sparse.spmatrix import SpMat

__all__ = ["DistMat", "even_splits"]

#: process-wide ids for spill segment keys (stable across re-spills,
#: never recycled like ``id()`` can be)
_SPILL_IDS = itertools.count()


class _MemCharge:
    """One matrix's memory-accounting ownership: what it charged where.

    Shared between the matrix and its GC finalizer, so blocks freed early
    (spilled) are not freed again at collection and an adopted matrix can
    take over its donor's charges.  Charges from before a machine
    :meth:`~repro.machine.Machine.shrink` are epoch-stale: the rank arrays
    were compacted, so stale holders stand down instead of mis-indexing.
    """

    __slots__ = ("machine", "epoch", "charged", "released", "finalizer")

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.epoch = machine.epoch
        self.charged: dict[int, int] = {}
        self.released = False
        self.finalizer = None

    def _stale(self) -> bool:
        return self.released or self.machine.epoch != self.epoch

    def add(self, charges: dict[int, int], *, site: str) -> None:
        if self._stale() or not charges:
            return
        self.machine.charge_allocation(charges, site=site)
        for rank, words in charges.items():
            self.charged[rank] = self.charged.get(rank, 0) + words

    def sub(self, rank: int, words: int) -> None:
        if self._stale():
            return
        self.machine.free(rank, words)
        left = self.charged.get(rank, 0) - words
        if left > 0:
            self.charged[rank] = left
        else:
            self.charged.pop(rank, None)

    def release(self) -> None:
        if self.released:
            return
        self.released = True
        if self.machine.epoch != self.epoch:
            return
        for rank, words in self.charged.items():
            self.machine.free(rank, words)
        self.charged = {}


def _release_charge(holder: _MemCharge) -> None:
    holder.release()


class _LazyBlockRow:
    """One row of a spilled matrix's block grid; faults blocks in on read."""

    __slots__ = ("_mat", "_i")

    def __init__(self, mat: "DistMat", i: int) -> None:
        self._mat = mat
        self._i = i

    def __len__(self) -> int:
        return self._mat.grid_shape[1]

    def __getitem__(self, j: int) -> SpMat:
        return self._mat._block_at(self._i, j)

    def __setitem__(self, j: int, blk: SpMat) -> None:
        self._mat._set_block(self._i, j, blk)

    def __iter__(self):
        for j in range(len(self)):
            yield self._mat._block_at(self._i, j)


class _LazyBlocks:
    """Drop-in view over ``DistMat.blocks`` once any block has spilled.

    Supports exactly the access patterns the codebase uses — ``[i][j]``
    indexing, row iteration, ``len`` — and transparently faults spilled
    blocks back in from the store (charging the unspill) on first touch.
    """

    __slots__ = ("_mat",)

    def __init__(self, mat: "DistMat") -> None:
        self._mat = mat

    def __len__(self) -> int:
        return self._mat.grid_shape[0]

    def __getitem__(self, i: int) -> _LazyBlockRow:
        return _LazyBlockRow(self._mat, i)

    def __iter__(self):
        for i in range(len(self)):
            yield _LazyBlockRow(self._mat, i)


def _pack_block(
    src: SpMat,
    r0: int,
    c0: int,
    row_splits: np.ndarray,
    col_splits: np.ndarray,
    monoid: Monoid,
) -> list[tuple[int, int, SpMat]]:
    """Slice one source block against a target blocking.

    Returns ``(a, b, piece)`` entries in deterministic (a, b ascending)
    order — the per-source-block unit of redistribution packing, pure so
    the machine's executor can fan source blocks across host cores.
    """
    out: list[tuple[int, int, SpMat]] = []
    g_rows = src.rows + r0
    g_cols = src.cols + c0
    ti = np.searchsorted(row_splits, g_rows, side="right") - 1
    tj = np.searchsorted(col_splits, g_cols, side="right") - 1
    for a in np.unique(ti):
        for b in np.unique(tj[ti == a]):
            sel = ((ti == a) & (tj == b)).nonzero()[0]
            piece = SpMat(
                int(row_splits[a + 1] - row_splits[a]),
                int(col_splits[b + 1] - col_splits[b]),
                g_rows[sel] - row_splits[a],
                g_cols[sel] - col_splits[b],
                {k: v[sel] for k, v in src.vals.items()},
                monoid,
            )
            out.append((int(a), int(b), piece))
    return out


def even_splits(n: int, parts: int) -> np.ndarray:
    """Boundaries of an even contiguous split of ``range(n)`` into ``parts``."""
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    return np.linspace(0, n, parts + 1).astype(np.int64)


class DistMat:
    """A sparse matrix distributed over a 2D rank array.

    Parameters
    ----------
    machine:
        The simulated machine the blocks live on.
    ranks2d:
        ``pr × pc`` integer array of machine ranks owning each block.
    row_splits, col_splits:
        Block boundaries (lengths ``pr + 1`` / ``pc + 1``).
    blocks:
        ``pr × pc`` nested list of local-coordinate :class:`SpMat` blocks.
    monoid:
        The shared element monoid.
    """

    __slots__ = (
        "machine",
        "ranks2d",
        "row_splits",
        "col_splits",
        "blocks",
        "monoid",
        "nrows",
        "ncols",
        "_cached_t",
        "redundancy",
        "_replicas",
        "_source",
        "_memcharge",
        "_resident",
        "_spilled",
        "_spill_id",
        "__weakref__",
    )

    def __init__(
        self,
        machine: Machine,
        ranks2d: np.ndarray,
        row_splits: np.ndarray,
        col_splits: np.ndarray,
        blocks: list[list[SpMat]],
        monoid: Monoid,
    ) -> None:
        ranks2d = np.asarray(ranks2d, dtype=np.int64)
        if ranks2d.ndim != 2:
            raise ValueError("ranks2d must be 2-dimensional")
        pr, pc = ranks2d.shape
        row_splits = np.asarray(row_splits, dtype=np.int64)
        col_splits = np.asarray(col_splits, dtype=np.int64)
        if len(row_splits) != pr + 1 or len(col_splits) != pc + 1:
            raise ValueError("split lengths must match the rank grid shape")
        if len(blocks) != pr or any(len(row) != pc for row in blocks):
            raise ValueError("blocks layout must match the rank grid shape")
        for i in range(pr):
            for j in range(pc):
                expect = (
                    int(row_splits[i + 1] - row_splits[i]),
                    int(col_splits[j + 1] - col_splits[j]),
                )
                if blocks[i][j].shape != expect:
                    raise ValueError(
                        f"block ({i},{j}) has shape {blocks[i][j].shape}, "
                        f"expected {expect}"
                    )
        self.machine = machine
        self.ranks2d = ranks2d
        self.row_splits = row_splits
        self.col_splits = col_splits
        self.blocks = blocks
        self.monoid = monoid
        self.nrows = int(row_splits[-1])
        self.ncols = int(col_splits[-1])
        self._cached_t: "DistMat | None" = None
        #: elastic redundancy (set by :meth:`distribute` when the machine
        #: runs with an ElasticPolicy): the policy, the per-block checksummed
        #: buddy replicas, and the source matrix for re-materialization
        self.redundancy = None
        self._replicas: dict | None = None
        self._source: SpMat | None = None
        #: spill state: ``_resident`` is the raw nested block list (a cell is
        #: ``None`` while its block lives in the spill store, keyed in
        #: ``_spilled``); ``self.blocks`` becomes a lazy fault-in view the
        #: first time anything spills
        self._resident = blocks
        self._spilled: dict[tuple[int, int], object] = {}
        self._spill_id: int | None = None
        self._memcharge = _MemCharge(machine)
        charges: dict[int, int] = {}
        for i in range(pr):
            for j in range(pc):
                w = blocks[i][j].words()
                if w:
                    r = int(ranks2d[i, j])
                    charges[r] = charges.get(r, 0) + w
        self._memcharge.add(charges, site="distmat")
        self._memcharge.finalizer = weakref.finalize(
            self, _release_charge, self._memcharge
        )

    # -- construction -----------------------------------------------------------

    @classmethod
    def distribute(
        cls,
        mat: SpMat,
        machine: Machine,
        ranks2d: np.ndarray,
        *,
        row_splits: np.ndarray | None = None,
        col_splits: np.ndarray | None = None,
        charge: bool = True,
        redundancy=None,
        replicate: bool = True,
    ) -> "DistMat":
        """Scatter a node-local matrix into blocks (root-owned input).

        ``row_splits`` / ``col_splits`` / ``charge`` / ``redundancy`` are
        keyword-only.  Charged as a scatter where the root owns the whole
        matrix — the bulk-synchronous graph input path (CTF
        ``Tensor::write``).

        ``redundancy`` (an :class:`~repro.elastic.ElasticPolicy`) arms
        elastic recovery for this matrix: under ``"replica"`` every block is
        copied to a buddy rank with a CRC-32 checksum and the replication
        collective is charged to the ledger (category ``"redundancy"``);
        under ``"source"`` the source matrix is retained for lost-block
        re-materialization at zero steady-state cost.
        """
        ranks2d = np.asarray(ranks2d, dtype=np.int64)
        pr, pc = ranks2d.shape
        if row_splits is None:
            row_splits = even_splits(mat.nrows, pr)
        if col_splits is None:
            col_splits = even_splits(mat.ncols, pc)
        blocks = [
            [
                mat.block(
                    int(row_splits[i]),
                    int(row_splits[i + 1]),
                    int(col_splits[j]),
                    int(col_splits[j + 1]),
                )
                for j in range(pc)
            ]
            for i in range(pr)
        ]
        if charge:
            flat_ranks = np.unique(ranks2d.ravel())
            if len(flat_ranks) > 1:
                machine.charge_collective(
                    flat_ranks, mat.words(), weight=1.0, category="input"
                )
        out = cls(machine, ranks2d, row_splits, col_splits, blocks, monoid=mat.monoid)
        if redundancy is not None:
            out._install_redundancy(
                mat, redundancy, charge=charge, replicate=replicate
            )
        return out

    def _install_redundancy(
        self, source: SpMat, policy, *, charge: bool = True, replicate: bool = True
    ) -> None:
        """Arm this matrix for elastic repair under ``policy``.

        Replica mode ships every rank's blocks to its buddy
        ``(owner + stride) % p`` — one shift collective, charged by the
        busiest sender (category ``"redundancy"``) — and records a CRC-32
        per replica so repair can verify integrity before trusting it.
        The source handle is kept in both modes as the re-materialization
        fallback.
        """
        from repro.faults.plan import payload_checksum

        self.redundancy = policy
        self._source = source
        if policy.redundancy != "replica" or not replicate:
            # source mode (or a ladder-forced lean install): the retained
            # source is the only fallback; replicas can be re-armed later
            return
        p = self.machine.p
        pr, pc = self.grid_shape
        replicas: dict[tuple[int, int], tuple[int, int, SpMat]] = {}
        shipped = np.zeros(p)
        for i in range(pr):
            for j in range(pc):
                owner = int(self.ranks2d[i, j])
                buddy = (owner + policy.stride) % p
                blk = self.blocks[i][j]
                replicas[(i, j)] = (buddy, payload_checksum(blk), blk)
                if buddy != owner:
                    shipped[owner] += blk.words()
        rep_charges: dict[int, int] = {}
        for (_i, _j), (buddy, _crc, blk) in replicas.items():
            w = blk.words()
            if w:
                rep_charges[buddy] = rep_charges.get(buddy, 0) + w
        self._memcharge.add(rep_charges, site="redundancy")
        self._replicas = replicas
        if charge and p > 1 and shipped.max() > 0:
            self.machine.charge_collective(
                np.arange(p),
                float(shipped.max()),
                weight=1.0,
                category="redundancy",
            )

    def repair_lost(self, dead) -> dict[str, int]:
        """Reconstruct blocks owned by ``dead`` ranks, in place.

        Primary path: the checksummed buddy replica (skipped when the buddy
        died too or the CRC no longer matches); fallback: re-slicing the
        retained source matrix.  Raises
        :class:`~repro.elastic.RecoveryError` when a lost block has neither.
        Returns repair statistics (``replica`` / ``source`` block counts and
        restored ``words``).
        """
        from repro.elastic.recovery import RecoveryError
        from repro.faults.plan import payload_checksum

        dead = set(int(r) for r in dead)
        stats = {"replica": 0, "source": 0, "words": 0}
        pr, pc = self.grid_shape
        for i in range(pr):
            for j in range(pc):
                owner = int(self.ranks2d[i, j])
                if owner not in dead:
                    continue
                blk = None
                rep = (self._replicas or {}).get((i, j))
                if rep is not None:
                    buddy, crc, copy_ = rep
                    if buddy not in dead:
                        if isinstance(copy_, SpMat):
                            if payload_checksum(copy_) == crc:
                                blk = copy_
                                stats["replica"] += 1
                        else:
                            # replica was evicted to the spill store under
                            # memory pressure; fetch verifies its CRC
                            blk = self._fetch_segment(copy_, site="repair")
                            if blk is not None:
                                stats["replica"] += 1
                if blk is None and self._source is not None:
                    blk = self._source.block(
                        int(self.row_splits[i]),
                        int(self.row_splits[i + 1]),
                        int(self.col_splits[j]),
                        int(self.col_splits[j + 1]),
                    )
                    stats["source"] += 1
                if blk is None:
                    raise RecoveryError(
                        f"block ({i},{j}) lost with rank {owner}: no live "
                        f"replica and no retained source to rebuild from"
                    )
                self.blocks[i][j] = blk
                stats["words"] += blk.words()
        self._cached_t = None
        return stats

    def _adopt(self, other: "DistMat") -> None:
        """Become ``other`` in place (all slots copied).

        Elastic recovery rebuilds an invariant matrix on the shrunken grid
        and adopts it into the original object, so long-lived references
        (the MFBC driver's adjacency, the engine's invariant registry) stay
        valid across the reconfiguration.
        """
        old_charge = self._memcharge
        for slot in self.__slots__:
            if slot == "__weakref__":
                continue
            setattr(self, slot, getattr(other, slot))
        self._cached_t = None
        # the lazy view (if any) must point at *this* object, not the donor
        if isinstance(self.blocks, _LazyBlocks):
            self.blocks = _LazyBlocks(self)
        # take over the donor's memory charges: release what this object
        # held, then move ownership of the donor's holder to this object so
        # the donor's collection does not free blocks that now live here
        if old_charge is not self._memcharge:
            old_fin = old_charge.finalizer
            if old_fin is not None:
                old_fin.detach()
            old_charge.release()
            donor_fin = self._memcharge.finalizer
            if donor_fin is not None:
                donor_fin.detach()
            self._memcharge.finalizer = weakref.finalize(
                self, _release_charge, self._memcharge
            )

    @classmethod
    def from_triples(
        cls,
        machine: Machine,
        ranks2d: np.ndarray,
        nrows: int,
        ncols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: FieldArray,
        monoid: Monoid,
        row_splits: np.ndarray | None = None,
        col_splits: np.ndarray | None = None,
        *,
        charge: bool = True,
    ) -> "DistMat":
        """Build and distribute from coordinate triples."""
        mat = SpMat(nrows, ncols, rows, cols, vals, monoid)
        return cls.distribute(
            mat,
            machine,
            ranks2d,
            row_splits=row_splits,
            col_splits=col_splits,
            charge=charge,
        )

    @classmethod
    def empty_like(cls, other: "DistMat", monoid: Monoid | None = None) -> "DistMat":
        """An all-identity matrix with ``other``'s distribution."""
        monoid = monoid or other.monoid
        pr, pc = other.grid_shape
        blocks = [
            [
                SpMat.empty(
                    int(other.row_splits[i + 1] - other.row_splits[i]),
                    int(other.col_splits[j + 1] - other.col_splits[j]),
                    monoid,
                )
                for j in range(pc)
            ]
            for i in range(pr)
        ]
        return cls(
            other.machine,
            other.ranks2d,
            other.row_splits,
            other.col_splits,
            blocks,
            monoid,
        )

    # -- properties ----------------------------------------------------------------

    @property
    def grid_shape(self) -> tuple[int, int]:
        return tuple(self.ranks2d.shape)  # type: ignore[return-value]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    def _cell_meta(self):
        """Yield ``(i, j, nnz, words)`` per block WITHOUT faulting spills in.

        Size queries must not defeat eviction: a spilled block's counts come
        from its segment metadata, so ``nnz``/``words`` on a partially
        spilled matrix stay free.
        """
        pr, pc = self.grid_shape
        raw = self._resident
        for i in range(pr):
            for j in range(pc):
                blk = raw[i][j]
                if blk is not None:
                    yield i, j, blk.nnz, blk.words()
                else:
                    seg = self._spilled[(i, j)]
                    yield i, j, seg.nnz, seg.words

    @property
    def nnz(self) -> int:
        return sum(nnz for _i, _j, nnz, _w in self._cell_meta())

    def words(self) -> int:
        return sum(w for _i, _j, _nnz, w in self._cell_meta())

    def max_block_words(self) -> int:
        return max(w for _i, _j, _nnz, w in self._cell_meta())

    def memory_words_per_rank(self) -> dict[int, int]:
        """Words held by each participating rank (for memory budget checks)."""
        out: dict[int, int] = {}
        for i, j, _nnz, w in self._cell_meta():
            r = int(self.ranks2d[i, j])
            out[r] = out.get(r, 0) + w
        return out

    def resident_words(self) -> int:
        """Words currently resident in (simulated) memory, excluding spills."""
        pr, pc = self.grid_shape
        raw = self._resident
        return sum(
            raw[i][j].words()
            for i in range(pr)
            for j in range(pc)
            if raw[i][j] is not None
        )

    def same_distribution(self, other: "DistMat") -> bool:
        return (
            np.array_equal(self.ranks2d, other.ranks2d)
            and np.array_equal(self.row_splits, other.row_splits)
            and np.array_equal(self.col_splits, other.col_splits)
        )

    # -- spill / fault-in ---------------------------------------------------------

    def _seg_key(self, i: int, j: int, *, replica: bool = False) -> str:
        if self._spill_id is None:
            self._spill_id = next(_SPILL_IDS)
        kind = "r" if replica else "b"
        return f"m{self._spill_id}-{kind}{i}-{j}"

    def _store(self):
        mgr = getattr(self.machine, "memory", None)
        return None if mgr is None else mgr.store()

    def _fetch_segment(self, seg, *, site: str) -> SpMat | None:
        from repro.memory.spill import SpillError

        store = self._store()
        if store is None:
            return None
        try:
            return store.fetch(seg, site=site)
        except SpillError:
            return None

    def _block_at(self, i: int, j: int) -> SpMat:
        """The block at ``(i, j)``, faulting it in from the store if spilled.

        The unspill is charged against the owner rank's memory budget (which
        may trigger relief-eviction of colder blocks) and ledger time before
        the bytes are read back and CRC-verified.
        """
        blk = self._resident[i][j]
        if blk is not None:
            return blk
        seg = self._spilled[(i, j)]
        owner = int(self.ranks2d[i, j])
        self._memcharge.add({owner: seg.words}, site="unspill")
        store = self._store()
        try:
            blk = store.fetch(seg, rank=owner)
        except Exception:
            self._memcharge.sub(owner, seg.words)
            raise
        self._resident[i][j] = blk
        del self._spilled[(i, j)]
        store.drop(seg.key)
        return blk

    def _set_block(self, i: int, j: int, blk: SpMat) -> None:
        """Assign a resident block (uncharged — callers own the accounting)."""
        self._resident[i][j] = blk
        seg = self._spilled.pop((i, j), None)
        if seg is not None:
            store = self._store()
            if store is not None:
                store.drop(seg.key)

    def spill_blocks(self, store, rank: int | None = None) -> int:
        """Evict resident primary blocks to ``store``; return words freed.

        ``rank`` restricts eviction to blocks owned by that rank (the
        relief path); ``None`` evicts everywhere (the ladder's spill rung).
        A block is only released after the store's write-then-verify
        read-back passes — a torn write leaves it resident.
        """
        freed = 0
        pr, pc = self.grid_shape
        raw = self._resident
        for i in range(pr):
            for j in range(pc):
                owner = int(self.ranks2d[i, j])
                if rank is not None and owner != rank:
                    continue
                blk = raw[i][j]
                if blk is None:
                    continue
                w = blk.words()
                if w == 0:
                    continue
                seg = store.spill(self._seg_key(i, j), blk, rank=owner)
                if seg is None:
                    continue  # torn write detected: keep the block resident
                if not isinstance(self.blocks, _LazyBlocks):
                    self.blocks = _LazyBlocks(self)
                self._spilled[(i, j)] = seg
                raw[i][j] = None
                self._memcharge.sub(owner, w)
                freed += w
        return freed

    def spill_replicas(self, store, rank: int | None = None) -> int:
        """Evict resident replica copies to ``store``; return words freed.

        Replicas are the coldest data by construction (only read at repair
        time), so they go first under pressure.  A spilled replica still
        repairs: its segment CRC is the integrity check the resident copy's
        checksum used to provide.
        """
        if not self._replicas:
            return 0
        freed = 0
        for (i, j), (buddy, crc, payload) in list(self._replicas.items()):
            if not isinstance(payload, SpMat):
                continue  # already spilled
            if rank is not None and buddy != rank:
                continue
            w = payload.words()
            if w == 0:
                continue
            seg = store.spill(
                self._seg_key(i, j, replica=True),
                payload,
                rank=buddy,
                site="replica",
            )
            if seg is None:
                continue  # torn write detected: keep the replica resident
            self._replicas[(i, j)] = (buddy, crc, seg)
            self._memcharge.sub(buddy, w)
            freed += w
        return freed

    def replica_words(self) -> int:
        """Words of *resident* replica redundancy (what dropping would free)."""
        if not self._replicas:
            return 0
        return sum(
            payload.words()
            for _buddy, _crc, payload in self._replicas.values()
            if isinstance(payload, SpMat)
        )

    def drop_redundancy(self) -> int:
        """Release replica redundancy entirely; return words freed.

        The ladder's last resort before falling through: recovery degrades
        to source re-materialization (still correct, just slower).  The
        retained source and policy are kept so redundancy can be re-armed
        via :meth:`rearm_redundancy` once pressure clears.
        """
        if not self._replicas:
            return 0
        freed = 0
        stale_segs = []
        for (_i, _j), (buddy, _crc, payload) in self._replicas.items():
            if isinstance(payload, SpMat):
                w = payload.words()
                if w:
                    self._memcharge.sub(buddy, w)
                    freed += w
            else:
                stale_segs.append(payload)
        self._replicas = None
        store = self._store()
        if store is not None:
            for seg in stale_segs:
                store.drop(seg.key)
        return freed

    def rearm_redundancy(self) -> bool:
        """Re-install replica redundancy after a pressure-forced drop."""
        if self.redundancy is None or self._source is None:
            return False
        if self.redundancy.redundancy != "replica" or self._replicas is not None:
            return False
        self._install_redundancy(self._source, self.redundancy, charge=True)
        return True

    # -- gather -----------------------------------------------------------------

    def gather(self, *, charge: bool = True) -> SpMat:
        """Reassemble the full matrix on a single node (CTF read-back path)."""
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        vals_parts: list[FieldArray] = []
        pr, pc = self.grid_shape
        for i in range(pr):
            for j in range(pc):
                b = self.blocks[i][j]
                if b.nnz == 0:
                    continue
                rows_parts.append(b.rows + self.row_splits[i])
                cols_parts.append(b.cols + self.col_splits[j])
                vals_parts.append(b.vals)
        if charge:
            flat_ranks = np.unique(self.ranks2d.ravel())
            if len(flat_ranks) > 1:
                self.machine.charge_collective(
                    flat_ranks, self.words(), weight=1.0, category="gather"
                )
        if not rows_parts:
            return SpMat.empty(self.nrows, self.ncols, self.monoid)
        from repro.algebra.fields import concat_fields

        return SpMat(
            self.nrows,
            self.ncols,
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            concat_fields(vals_parts),
            self.monoid,
            canonical=False,
        )

    # -- elementwise (communication-free on co-distributed operands) -------------

    def _aligned(self, other: "DistMat") -> "DistMat":
        """``other`` co-distributed with ``self``.

        Elementwise operations are communication-free when operands share a
        distribution (the common case — the engine keeps working sets
        aligned); otherwise the other operand is redistributed first, with
        the traffic charged (CTF lets users "work obliviously of the data
        distribution", §6.2).  Mixing machines is still an error: blocks on
        different simulated machines cannot meet.
        """
        if other.machine is not self.machine:
            raise ValueError(
                "operands live on different machines and cannot be "
                "co-distributed"
            )
        if self.same_distribution(other):
            return other
        return other.redistribute(
            self.ranks2d, self.row_splits, self.col_splits
        )

    def _blockwise(self, fn: Callable[[SpMat, tuple[int, int]], SpMat], monoid=None):
        pr, pc = self.grid_shape
        cells = [(i, j) for i in range(pr) for j in range(pc)]
        flat = self.machine.executor.run_tasks(
            [
                (lambda b=self.blocks[i][j], ij=(i, j): fn(b, ij))
                for i, j in cells
            ],
            site="blockwise",
            est_work=float(self.nnz),
            ranks=[int(self.ranks2d[i, j]) for i, j in cells],
        )
        blocks = [[flat[i * pc + j] for j in range(pc)] for i in range(pr)]
        return DistMat(
            self.machine,
            self.ranks2d,
            self.row_splits,
            self.col_splits,
            blocks,
            monoid or self.monoid,
        )

    def combine(self, other: "DistMat") -> "DistMat":
        other = self._aligned(other)
        return self._blockwise(
            lambda b, ij: b.combine(other.blocks[ij[0]][ij[1]])
        )

    def filter(self, predicate) -> "DistMat":
        return self._blockwise(lambda b, ij: b.filter(predicate))

    def map(self, fn, monoid: Monoid | None = None) -> "DistMat":
        return self._blockwise(lambda b, ij: b.map(fn, monoid=monoid), monoid)

    def zip_filter(self, other: "DistMat", predicate) -> "DistMat":
        other = self._aligned(other)
        return self._blockwise(
            lambda b, ij: b.zip_filter(other.blocks[ij[0]][ij[1]], predicate)
        )

    def zip_map(self, other: "DistMat", fn, monoid: Monoid | None = None) -> "DistMat":
        other = self._aligned(other)
        return self._blockwise(
            lambda b, ij: b.zip_map(other.blocks[ij[0]][ij[1]], fn, monoid=monoid),
            monoid,
        )

    # -- structure ---------------------------------------------------------------

    def transpose(self) -> "DistMat":
        """Transpose: every block transposes in place, the grid flips.

        No traffic: block ``(i,j)`` stays on its rank and becomes block
        ``(j,i)`` of the transposed grid (CTF's data-reordering happens
        lazily at the next redistribution).  The result is memoized so that
        loop-invariant transposes (MFBr's ``Aᵀ``) keep a stable identity —
        which is what lets the engine's replication cache amortize them.
        """
        if self._cached_t is not None:
            return self._cached_t
        pr, pc = self.grid_shape
        blocks = [[self.blocks[i][j].transpose() for i in range(pr)] for j in range(pc)]
        out = DistMat(
            self.machine,
            self.ranks2d.T,
            self.col_splits,
            self.row_splits,
            blocks,
            self.monoid,
        )
        self._cached_t = out
        out._cached_t = self
        return out

    def redistribute(
        self,
        ranks2d: np.ndarray,
        row_splits: np.ndarray | None = None,
        col_splits: np.ndarray | None = None,
        *,
        charge: bool = True,
    ) -> "DistMat":
        """Move to a new blocking/rank assignment (CTF sparse redistribution).

        Every source block is sliced against the target blocking; pieces that
        change owner are charged as one all-to-all-v collective sized by the
        busiest rank's sent+received volume (CTF's sparse-to-sparse
        redistribution kernel, §6.2).
        """
        ranks2d = np.asarray(ranks2d, dtype=np.int64)
        prn, pcn = ranks2d.shape
        if row_splits is None:
            row_splits = even_splits(self.nrows, prn)
        if col_splits is None:
            col_splits = even_splits(self.ncols, pcn)
        row_splits = np.asarray(row_splits, dtype=np.int64)
        col_splits = np.asarray(col_splits, dtype=np.int64)

        new_blocks: list[list[list[SpMat]]] = [
            [[] for _ in range(pcn)] for _ in range(prn)
        ]
        sent = np.zeros(self.machine.p)
        recv = np.zeros(self.machine.p)
        pr, pc = self.grid_shape
        # packing each source block against the target blocking is
        # independent work: fan the nonempty blocks through the executor,
        # then merge the pieces on the simulation thread in (i, j) order
        sources = [
            (i, j) for i, j, nnz, _w in self._cell_meta() if nnz
        ]
        piece_lists = self.machine.executor.run_tasks(
            [
                (
                    lambda src=self.blocks[i][j],
                    r0=int(self.row_splits[i]),
                    c0=int(self.col_splits[j]): _pack_block(
                        src, r0, c0, row_splits, col_splits, self.monoid
                    )
                )
                for i, j in sources
            ],
            site="redistribute",
            est_work=float(self.nnz),
            ranks=[int(self.ranks2d[i, j]) for i, j in sources],
        )
        for (i, j), pieces in zip(sources, piece_lists):
            src_rank = int(self.ranks2d[i, j])
            for a, b, piece in pieces:
                new_blocks[a][b].append(piece)
                dst_rank = int(ranks2d[a, b])
                if src_rank != dst_rank and piece.nnz:
                    sent[src_rank] += piece.words()
                    recv[dst_rank] += piece.words()
        if charge:
            moved = sent + recv
            participants = np.unique(
                np.concatenate([self.ranks2d.ravel(), ranks2d.ravel()])
            )
            if moved.max() > 0 and len(participants) > 1:
                self.machine.charge_collective(
                    participants,
                    float(moved.max()),
                    weight=1.0,
                    category="redistribute",
                )

        assembled: list[list[SpMat]] = []
        for a in range(prn):
            row: list[SpMat] = []
            for b in range(pcn):
                shape = (
                    int(row_splits[a + 1] - row_splits[a]),
                    int(col_splits[b + 1] - col_splits[b]),
                )
                pieces = new_blocks[a][b]
                if not pieces:
                    row.append(SpMat.empty(*shape, self.monoid))
                elif len(pieces) == 1:
                    row.append(pieces[0])
                else:
                    acc = pieces[0]
                    for piece in pieces[1:]:
                        acc = acc.combine(piece)
                    row.append(acc)
            assembled.append(row)
        return DistMat(
            self.machine, ranks2d, row_splits, col_splits, assembled, self.monoid
        )

    def extract_col_range(self, c0: int, c1: int) -> "DistMat":
        """Restrict to global columns [c0, c1) — purely local slicing.

        The resulting column splits are the old ones clipped to the range,
        so the rank grid is unchanged (blocks fully outside become empty).
        """
        if not 0 <= c0 <= c1 <= self.ncols:
            raise ValueError(f"column range [{c0}, {c1}) out of bounds")
        new_col_splits = np.clip(self.col_splits, c0, c1) - c0
        pr, pc = self.grid_shape
        blocks = []
        for i in range(pr):
            row = []
            for j in range(pc):
                width = int(self.col_splits[j + 1] - self.col_splits[j])
                lo = min(max(c0 - int(self.col_splits[j]), 0), width)
                hi = min(max(c1 - int(self.col_splits[j]), 0), width)
                hi = max(hi, lo)
                row.append(self.blocks[i][j].block(0, self.blocks[i][j].nrows, lo, hi))
            blocks.append(row)
        return DistMat(
            self.machine,
            self.ranks2d,
            self.row_splits,
            new_col_splits,
            blocks,
            self.monoid,
        )

    def extract_row_range(self, r0: int, r1: int) -> "DistMat":
        """Restrict to global rows [r0, r1) — purely local slicing."""
        if not 0 <= r0 <= r1 <= self.nrows:
            raise ValueError(f"row range [{r0}, {r1}) out of bounds")
        new_row_splits = np.clip(self.row_splits, r0, r1) - r0
        pr, pc = self.grid_shape
        blocks = []
        for i in range(pr):
            height = int(self.row_splits[i + 1] - self.row_splits[i])
            lo = min(max(r0 - int(self.row_splits[i]), 0), height)
            hi = min(max(r1 - int(self.row_splits[i]), 0), height)
            hi = max(hi, lo)
            blocks.append(
                [
                    self.blocks[i][j].block(lo, hi, 0, self.blocks[i][j].ncols)
                    for j in range(pc)
                ]
            )
        return DistMat(
            self.machine,
            self.ranks2d,
            new_row_splits,
            self.col_splits,
            blocks,
            self.monoid,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistMat(shape={self.shape}, grid={self.grid_shape}, nnz={self.nnz})"
        )
