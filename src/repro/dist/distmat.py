"""Block-distributed sparse matrices.

A :class:`DistMat` assigns a ``pr × pc`` blocking of an ``nrows × ncols``
matrix onto a 2D array of machine ranks.  Blocks are node-local
:class:`~repro.sparse.SpMat` matrices in *local* coordinates.  Elementwise
operations (the CTF ``Transform``/``sparsify``/summation surface that MFBC's
frontier logic uses) act block-by-block and are communication-free whenever
the operands are co-distributed — the engine maintains that invariant.

The paper's load-balance assumption (§5.2, balls-into-bins after random
vertex relabeling) is what makes these oblivious even splits balanced.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algebra.fields import FieldArray
from repro.algebra.monoid import Monoid
from repro.machine.machine import Machine
from repro.sparse.spmatrix import SpMat

__all__ = ["DistMat", "even_splits"]


def _pack_block(
    src: SpMat,
    r0: int,
    c0: int,
    row_splits: np.ndarray,
    col_splits: np.ndarray,
    monoid: Monoid,
) -> list[tuple[int, int, SpMat]]:
    """Slice one source block against a target blocking.

    Returns ``(a, b, piece)`` entries in deterministic (a, b ascending)
    order — the per-source-block unit of redistribution packing, pure so
    the machine's executor can fan source blocks across host cores.
    """
    out: list[tuple[int, int, SpMat]] = []
    g_rows = src.rows + r0
    g_cols = src.cols + c0
    ti = np.searchsorted(row_splits, g_rows, side="right") - 1
    tj = np.searchsorted(col_splits, g_cols, side="right") - 1
    for a in np.unique(ti):
        for b in np.unique(tj[ti == a]):
            sel = ((ti == a) & (tj == b)).nonzero()[0]
            piece = SpMat(
                int(row_splits[a + 1] - row_splits[a]),
                int(col_splits[b + 1] - col_splits[b]),
                g_rows[sel] - row_splits[a],
                g_cols[sel] - col_splits[b],
                {k: v[sel] for k, v in src.vals.items()},
                monoid,
            )
            out.append((int(a), int(b), piece))
    return out


def even_splits(n: int, parts: int) -> np.ndarray:
    """Boundaries of an even contiguous split of ``range(n)`` into ``parts``."""
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    return np.linspace(0, n, parts + 1).astype(np.int64)


class DistMat:
    """A sparse matrix distributed over a 2D rank array.

    Parameters
    ----------
    machine:
        The simulated machine the blocks live on.
    ranks2d:
        ``pr × pc`` integer array of machine ranks owning each block.
    row_splits, col_splits:
        Block boundaries (lengths ``pr + 1`` / ``pc + 1``).
    blocks:
        ``pr × pc`` nested list of local-coordinate :class:`SpMat` blocks.
    monoid:
        The shared element monoid.
    """

    __slots__ = (
        "machine",
        "ranks2d",
        "row_splits",
        "col_splits",
        "blocks",
        "monoid",
        "nrows",
        "ncols",
        "_cached_t",
        "redundancy",
        "_replicas",
        "_source",
    )

    def __init__(
        self,
        machine: Machine,
        ranks2d: np.ndarray,
        row_splits: np.ndarray,
        col_splits: np.ndarray,
        blocks: list[list[SpMat]],
        monoid: Monoid,
    ) -> None:
        ranks2d = np.asarray(ranks2d, dtype=np.int64)
        if ranks2d.ndim != 2:
            raise ValueError("ranks2d must be 2-dimensional")
        pr, pc = ranks2d.shape
        row_splits = np.asarray(row_splits, dtype=np.int64)
        col_splits = np.asarray(col_splits, dtype=np.int64)
        if len(row_splits) != pr + 1 or len(col_splits) != pc + 1:
            raise ValueError("split lengths must match the rank grid shape")
        if len(blocks) != pr or any(len(row) != pc for row in blocks):
            raise ValueError("blocks layout must match the rank grid shape")
        for i in range(pr):
            for j in range(pc):
                expect = (
                    int(row_splits[i + 1] - row_splits[i]),
                    int(col_splits[j + 1] - col_splits[j]),
                )
                if blocks[i][j].shape != expect:
                    raise ValueError(
                        f"block ({i},{j}) has shape {blocks[i][j].shape}, "
                        f"expected {expect}"
                    )
        self.machine = machine
        self.ranks2d = ranks2d
        self.row_splits = row_splits
        self.col_splits = col_splits
        self.blocks = blocks
        self.monoid = monoid
        self.nrows = int(row_splits[-1])
        self.ncols = int(col_splits[-1])
        self._cached_t: "DistMat | None" = None
        #: elastic redundancy (set by :meth:`distribute` when the machine
        #: runs with an ElasticPolicy): the policy, the per-block checksummed
        #: buddy replicas, and the source matrix for re-materialization
        self.redundancy = None
        self._replicas: dict | None = None
        self._source: SpMat | None = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def distribute(
        cls,
        mat: SpMat,
        machine: Machine,
        ranks2d: np.ndarray,
        *,
        row_splits: np.ndarray | None = None,
        col_splits: np.ndarray | None = None,
        charge: bool = True,
        redundancy=None,
    ) -> "DistMat":
        """Scatter a node-local matrix into blocks (root-owned input).

        ``row_splits`` / ``col_splits`` / ``charge`` / ``redundancy`` are
        keyword-only.  Charged as a scatter where the root owns the whole
        matrix — the bulk-synchronous graph input path (CTF
        ``Tensor::write``).

        ``redundancy`` (an :class:`~repro.elastic.ElasticPolicy`) arms
        elastic recovery for this matrix: under ``"replica"`` every block is
        copied to a buddy rank with a CRC-32 checksum and the replication
        collective is charged to the ledger (category ``"redundancy"``);
        under ``"source"`` the source matrix is retained for lost-block
        re-materialization at zero steady-state cost.
        """
        ranks2d = np.asarray(ranks2d, dtype=np.int64)
        pr, pc = ranks2d.shape
        if row_splits is None:
            row_splits = even_splits(mat.nrows, pr)
        if col_splits is None:
            col_splits = even_splits(mat.ncols, pc)
        blocks = [
            [
                mat.block(
                    int(row_splits[i]),
                    int(row_splits[i + 1]),
                    int(col_splits[j]),
                    int(col_splits[j + 1]),
                )
                for j in range(pc)
            ]
            for i in range(pr)
        ]
        if charge:
            flat_ranks = np.unique(ranks2d.ravel())
            if len(flat_ranks) > 1:
                machine.charge_collective(
                    flat_ranks, mat.words(), weight=1.0, category="input"
                )
        out = cls(machine, ranks2d, row_splits, col_splits, blocks, monoid=mat.monoid)
        if redundancy is not None:
            out._install_redundancy(mat, redundancy, charge=charge)
        return out

    def _install_redundancy(self, source: SpMat, policy, *, charge: bool = True) -> None:
        """Arm this matrix for elastic repair under ``policy``.

        Replica mode ships every rank's blocks to its buddy
        ``(owner + stride) % p`` — one shift collective, charged by the
        busiest sender (category ``"redundancy"``) — and records a CRC-32
        per replica so repair can verify integrity before trusting it.
        The source handle is kept in both modes as the re-materialization
        fallback.
        """
        from repro.faults.plan import payload_checksum

        self.redundancy = policy
        self._source = source
        if policy.redundancy != "replica":
            return
        p = self.machine.p
        pr, pc = self.grid_shape
        replicas: dict[tuple[int, int], tuple[int, int, SpMat]] = {}
        shipped = np.zeros(p)
        for i in range(pr):
            for j in range(pc):
                owner = int(self.ranks2d[i, j])
                buddy = (owner + policy.stride) % p
                blk = self.blocks[i][j]
                replicas[(i, j)] = (buddy, payload_checksum(blk), blk)
                if buddy != owner:
                    shipped[owner] += blk.words()
        self._replicas = replicas
        if charge and p > 1 and shipped.max() > 0:
            self.machine.charge_collective(
                np.arange(p),
                float(shipped.max()),
                weight=1.0,
                category="redundancy",
            )

    def repair_lost(self, dead) -> dict[str, int]:
        """Reconstruct blocks owned by ``dead`` ranks, in place.

        Primary path: the checksummed buddy replica (skipped when the buddy
        died too or the CRC no longer matches); fallback: re-slicing the
        retained source matrix.  Raises
        :class:`~repro.elastic.RecoveryError` when a lost block has neither.
        Returns repair statistics (``replica`` / ``source`` block counts and
        restored ``words``).
        """
        from repro.elastic.recovery import RecoveryError
        from repro.faults.plan import payload_checksum

        dead = set(int(r) for r in dead)
        stats = {"replica": 0, "source": 0, "words": 0}
        pr, pc = self.grid_shape
        for i in range(pr):
            for j in range(pc):
                owner = int(self.ranks2d[i, j])
                if owner not in dead:
                    continue
                blk = None
                rep = (self._replicas or {}).get((i, j))
                if rep is not None:
                    buddy, crc, copy_ = rep
                    if buddy not in dead and payload_checksum(copy_) == crc:
                        blk = copy_
                        stats["replica"] += 1
                if blk is None and self._source is not None:
                    blk = self._source.block(
                        int(self.row_splits[i]),
                        int(self.row_splits[i + 1]),
                        int(self.col_splits[j]),
                        int(self.col_splits[j + 1]),
                    )
                    stats["source"] += 1
                if blk is None:
                    raise RecoveryError(
                        f"block ({i},{j}) lost with rank {owner}: no live "
                        f"replica and no retained source to rebuild from"
                    )
                self.blocks[i][j] = blk
                stats["words"] += blk.words()
        self._cached_t = None
        return stats

    def _adopt(self, other: "DistMat") -> None:
        """Become ``other`` in place (all slots copied).

        Elastic recovery rebuilds an invariant matrix on the shrunken grid
        and adopts it into the original object, so long-lived references
        (the MFBC driver's adjacency, the engine's invariant registry) stay
        valid across the reconfiguration.
        """
        for slot in self.__slots__:
            setattr(self, slot, getattr(other, slot))
        self._cached_t = None

    @classmethod
    def from_triples(
        cls,
        machine: Machine,
        ranks2d: np.ndarray,
        nrows: int,
        ncols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: FieldArray,
        monoid: Monoid,
        row_splits: np.ndarray | None = None,
        col_splits: np.ndarray | None = None,
        *,
        charge: bool = True,
    ) -> "DistMat":
        """Build and distribute from coordinate triples."""
        mat = SpMat(nrows, ncols, rows, cols, vals, monoid)
        return cls.distribute(
            mat,
            machine,
            ranks2d,
            row_splits=row_splits,
            col_splits=col_splits,
            charge=charge,
        )

    @classmethod
    def empty_like(cls, other: "DistMat", monoid: Monoid | None = None) -> "DistMat":
        """An all-identity matrix with ``other``'s distribution."""
        monoid = monoid or other.monoid
        pr, pc = other.grid_shape
        blocks = [
            [
                SpMat.empty(
                    int(other.row_splits[i + 1] - other.row_splits[i]),
                    int(other.col_splits[j + 1] - other.col_splits[j]),
                    monoid,
                )
                for j in range(pc)
            ]
            for i in range(pr)
        ]
        return cls(
            other.machine,
            other.ranks2d,
            other.row_splits,
            other.col_splits,
            blocks,
            monoid,
        )

    # -- properties ----------------------------------------------------------------

    @property
    def grid_shape(self) -> tuple[int, int]:
        return tuple(self.ranks2d.shape)  # type: ignore[return-value]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nnz(self) -> int:
        return sum(b.nnz for row in self.blocks for b in row)

    def words(self) -> int:
        return sum(b.words() for row in self.blocks for b in row)

    def max_block_words(self) -> int:
        return max(b.words() for row in self.blocks for b in row)

    def memory_words_per_rank(self) -> dict[int, int]:
        """Words held by each participating rank (for memory budget checks)."""
        out: dict[int, int] = {}
        pr, pc = self.grid_shape
        for i in range(pr):
            for j in range(pc):
                r = int(self.ranks2d[i, j])
                out[r] = out.get(r, 0) + self.blocks[i][j].words()
        return out

    def same_distribution(self, other: "DistMat") -> bool:
        return (
            np.array_equal(self.ranks2d, other.ranks2d)
            and np.array_equal(self.row_splits, other.row_splits)
            and np.array_equal(self.col_splits, other.col_splits)
        )

    # -- gather -----------------------------------------------------------------

    def gather(self, *, charge: bool = True) -> SpMat:
        """Reassemble the full matrix on a single node (CTF read-back path)."""
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        vals_parts: list[FieldArray] = []
        pr, pc = self.grid_shape
        for i in range(pr):
            for j in range(pc):
                b = self.blocks[i][j]
                if b.nnz == 0:
                    continue
                rows_parts.append(b.rows + self.row_splits[i])
                cols_parts.append(b.cols + self.col_splits[j])
                vals_parts.append(b.vals)
        if charge:
            flat_ranks = np.unique(self.ranks2d.ravel())
            if len(flat_ranks) > 1:
                self.machine.charge_collective(
                    flat_ranks, self.words(), weight=1.0, category="gather"
                )
        if not rows_parts:
            return SpMat.empty(self.nrows, self.ncols, self.monoid)
        from repro.algebra.fields import concat_fields

        return SpMat(
            self.nrows,
            self.ncols,
            np.concatenate(rows_parts),
            np.concatenate(cols_parts),
            concat_fields(vals_parts),
            self.monoid,
            canonical=False,
        )

    # -- elementwise (communication-free on co-distributed operands) -------------

    def _aligned(self, other: "DistMat") -> "DistMat":
        """``other`` co-distributed with ``self``.

        Elementwise operations are communication-free when operands share a
        distribution (the common case — the engine keeps working sets
        aligned); otherwise the other operand is redistributed first, with
        the traffic charged (CTF lets users "work obliviously of the data
        distribution", §6.2).  Mixing machines is still an error: blocks on
        different simulated machines cannot meet.
        """
        if other.machine is not self.machine:
            raise ValueError(
                "operands live on different machines and cannot be "
                "co-distributed"
            )
        if self.same_distribution(other):
            return other
        return other.redistribute(
            self.ranks2d, self.row_splits, self.col_splits
        )

    def _blockwise(self, fn: Callable[[SpMat, tuple[int, int]], SpMat], monoid=None):
        pr, pc = self.grid_shape
        cells = [(i, j) for i in range(pr) for j in range(pc)]
        flat = self.machine.executor.run_tasks(
            [
                (lambda b=self.blocks[i][j], ij=(i, j): fn(b, ij))
                for i, j in cells
            ],
            site="blockwise",
            est_work=float(self.nnz),
            ranks=[int(self.ranks2d[i, j]) for i, j in cells],
        )
        blocks = [[flat[i * pc + j] for j in range(pc)] for i in range(pr)]
        return DistMat(
            self.machine,
            self.ranks2d,
            self.row_splits,
            self.col_splits,
            blocks,
            monoid or self.monoid,
        )

    def combine(self, other: "DistMat") -> "DistMat":
        other = self._aligned(other)
        return self._blockwise(
            lambda b, ij: b.combine(other.blocks[ij[0]][ij[1]])
        )

    def filter(self, predicate) -> "DistMat":
        return self._blockwise(lambda b, ij: b.filter(predicate))

    def map(self, fn, monoid: Monoid | None = None) -> "DistMat":
        return self._blockwise(lambda b, ij: b.map(fn, monoid=monoid), monoid)

    def zip_filter(self, other: "DistMat", predicate) -> "DistMat":
        other = self._aligned(other)
        return self._blockwise(
            lambda b, ij: b.zip_filter(other.blocks[ij[0]][ij[1]], predicate)
        )

    def zip_map(self, other: "DistMat", fn, monoid: Monoid | None = None) -> "DistMat":
        other = self._aligned(other)
        return self._blockwise(
            lambda b, ij: b.zip_map(other.blocks[ij[0]][ij[1]], fn, monoid=monoid),
            monoid,
        )

    # -- structure ---------------------------------------------------------------

    def transpose(self) -> "DistMat":
        """Transpose: every block transposes in place, the grid flips.

        No traffic: block ``(i,j)`` stays on its rank and becomes block
        ``(j,i)`` of the transposed grid (CTF's data-reordering happens
        lazily at the next redistribution).  The result is memoized so that
        loop-invariant transposes (MFBr's ``Aᵀ``) keep a stable identity —
        which is what lets the engine's replication cache amortize them.
        """
        if self._cached_t is not None:
            return self._cached_t
        pr, pc = self.grid_shape
        blocks = [[self.blocks[i][j].transpose() for i in range(pr)] for j in range(pc)]
        out = DistMat(
            self.machine,
            self.ranks2d.T,
            self.col_splits,
            self.row_splits,
            blocks,
            self.monoid,
        )
        self._cached_t = out
        out._cached_t = self
        return out

    def redistribute(
        self,
        ranks2d: np.ndarray,
        row_splits: np.ndarray | None = None,
        col_splits: np.ndarray | None = None,
        *,
        charge: bool = True,
    ) -> "DistMat":
        """Move to a new blocking/rank assignment (CTF sparse redistribution).

        Every source block is sliced against the target blocking; pieces that
        change owner are charged as one all-to-all-v collective sized by the
        busiest rank's sent+received volume (CTF's sparse-to-sparse
        redistribution kernel, §6.2).
        """
        ranks2d = np.asarray(ranks2d, dtype=np.int64)
        prn, pcn = ranks2d.shape
        if row_splits is None:
            row_splits = even_splits(self.nrows, prn)
        if col_splits is None:
            col_splits = even_splits(self.ncols, pcn)
        row_splits = np.asarray(row_splits, dtype=np.int64)
        col_splits = np.asarray(col_splits, dtype=np.int64)

        new_blocks: list[list[list[SpMat]]] = [
            [[] for _ in range(pcn)] for _ in range(prn)
        ]
        sent = np.zeros(self.machine.p)
        recv = np.zeros(self.machine.p)
        pr, pc = self.grid_shape
        # packing each source block against the target blocking is
        # independent work: fan the nonempty blocks through the executor,
        # then merge the pieces on the simulation thread in (i, j) order
        sources = [
            (i, j)
            for i in range(pr)
            for j in range(pc)
            if self.blocks[i][j].nnz
        ]
        piece_lists = self.machine.executor.run_tasks(
            [
                (
                    lambda src=self.blocks[i][j],
                    r0=int(self.row_splits[i]),
                    c0=int(self.col_splits[j]): _pack_block(
                        src, r0, c0, row_splits, col_splits, self.monoid
                    )
                )
                for i, j in sources
            ],
            site="redistribute",
            est_work=float(self.nnz),
            ranks=[int(self.ranks2d[i, j]) for i, j in sources],
        )
        for (i, j), pieces in zip(sources, piece_lists):
            src_rank = int(self.ranks2d[i, j])
            for a, b, piece in pieces:
                new_blocks[a][b].append(piece)
                dst_rank = int(ranks2d[a, b])
                if src_rank != dst_rank and piece.nnz:
                    sent[src_rank] += piece.words()
                    recv[dst_rank] += piece.words()
        if charge:
            moved = sent + recv
            participants = np.unique(
                np.concatenate([self.ranks2d.ravel(), ranks2d.ravel()])
            )
            if moved.max() > 0 and len(participants) > 1:
                self.machine.charge_collective(
                    participants,
                    float(moved.max()),
                    weight=1.0,
                    category="redistribute",
                )

        assembled: list[list[SpMat]] = []
        for a in range(prn):
            row: list[SpMat] = []
            for b in range(pcn):
                shape = (
                    int(row_splits[a + 1] - row_splits[a]),
                    int(col_splits[b + 1] - col_splits[b]),
                )
                pieces = new_blocks[a][b]
                if not pieces:
                    row.append(SpMat.empty(*shape, self.monoid))
                elif len(pieces) == 1:
                    row.append(pieces[0])
                else:
                    acc = pieces[0]
                    for piece in pieces[1:]:
                        acc = acc.combine(piece)
                    row.append(acc)
            assembled.append(row)
        return DistMat(
            self.machine, ranks2d, row_splits, col_splits, assembled, self.monoid
        )

    def extract_col_range(self, c0: int, c1: int) -> "DistMat":
        """Restrict to global columns [c0, c1) — purely local slicing.

        The resulting column splits are the old ones clipped to the range,
        so the rank grid is unchanged (blocks fully outside become empty).
        """
        if not 0 <= c0 <= c1 <= self.ncols:
            raise ValueError(f"column range [{c0}, {c1}) out of bounds")
        new_col_splits = np.clip(self.col_splits, c0, c1) - c0
        pr, pc = self.grid_shape
        blocks = []
        for i in range(pr):
            row = []
            for j in range(pc):
                width = int(self.col_splits[j + 1] - self.col_splits[j])
                lo = min(max(c0 - int(self.col_splits[j]), 0), width)
                hi = min(max(c1 - int(self.col_splits[j]), 0), width)
                hi = max(hi, lo)
                row.append(self.blocks[i][j].block(0, self.blocks[i][j].nrows, lo, hi))
            blocks.append(row)
        return DistMat(
            self.machine,
            self.ranks2d,
            self.row_splits,
            new_col_splits,
            blocks,
            self.monoid,
        )

    def extract_row_range(self, r0: int, r1: int) -> "DistMat":
        """Restrict to global rows [r0, r1) — purely local slicing."""
        if not 0 <= r0 <= r1 <= self.nrows:
            raise ValueError(f"row range [{r0}, {r1}) out of bounds")
        new_row_splits = np.clip(self.row_splits, r0, r1) - r0
        pr, pc = self.grid_shape
        blocks = []
        for i in range(pr):
            height = int(self.row_splits[i + 1] - self.row_splits[i])
            lo = min(max(r0 - int(self.row_splits[i]), 0), height)
            hi = min(max(r1 - int(self.row_splits[i]), 0), height)
            hi = max(hi, lo)
            blocks.append(
                [
                    self.blocks[i][j].block(lo, hi, 0, self.blocks[i][j].ncols)
                    for j in range(pc)
                ]
            )
        return DistMat(
            self.machine,
            self.ranks2d,
            new_row_splits,
            self.col_splits,
            blocks,
            self.monoid,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistMat(shape={self.shape}, grid={self.grid_shape}, nnz={self.nnz})"
        )
