"""The distributed execution engine for MFBC (and the CombBLAS baseline).

Implements the :class:`~repro.core.engine.Engine` protocol over the
simulated machine: matrices rest in a near-square machine-wide 2D "home"
layout between operations; every generalized product goes through the
selection policy (model-driven search by default) and one of the §5.2
algorithm variants, then lands back in the home layout.

Loop-invariant operands — the adjacency matrix and its transpose, which
every MFBC product reuses — are registered so the selector discounts their
replication cost and the variant executor serves their replicas from a
cache, reproducing the amortization in the proof of Theorem 5.1.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING

import numpy as np

from repro.algebra.matmul import MatMulSpec
from repro.algebra.monoid import Monoid
from repro.dist.distmat import DistMat
from repro.machine.grid import near_square_shape
from repro.machine.machine import Machine
from repro.obs import api as obs
from repro.sparse.spmatrix import SpMat
from repro.spgemm.selector import AutoPolicy, SelectionPolicy

# near_square_shape is re-exported for backward compatibility; the
# canonical definition lives in repro.machine.grid.
__all__ = ["DistributedEngine", "near_square_shape"]


class DistributedEngine:
    """Run MFBC's matrix operations on a simulated machine.

    Parameters
    ----------
    machine:
        The simulated machine (ranks + cost model + ledger + executor).
    policy:
        SpGEMM selection policy (keyword-only); default :class:`AutoPolicy`
        (CTF-style model search).  Pass ``PinnedPolicy.ca_mfbc(p, c)`` for
        CA-MFBC or ``Square2DPolicy()`` for the CombBLAS restriction.
    check:
        Correctness checking (keyword-only): a
        :class:`~repro.check.engine.CheckConfig`, a spec string
        (``"cheap"`` / ``"full"`` / ``"sample:N"`` / ``"off"``), or ``None``
        to fall back to ``machine.check`` and then the ``REPRO_CHECK``
        environment variable.  When checking resolves on, the constructor
        returns the engine wrapped in a
        :class:`~repro.check.engine.CheckedEngine`; when off, nothing is
        wrapped and the hot paths are exactly the unchecked ones.
    """

    def __new__(
        cls,
        machine: Machine | None = None,
        *,
        policy: SelectionPolicy | None = None,
        check=None,
    ):
        inner = super().__new__(cls)
        if machine is None:  # bare __new__ (copy/pickle protocols): no wrap
            return inner
        from repro.check.engine import resolve_check_config

        if check is not None:
            # an explicit spec — including an explicit "off" — wins outright
            cfg = resolve_check_config(check, env=False)
        else:
            cfg = resolve_check_config(getattr(machine, "check", None))
        if cfg is None:
            return inner
        from repro.check.engine import CheckedEngine

        # Returning a non-instance skips __init__, so run it by hand.
        inner.__init__(machine, policy=policy)
        return CheckedEngine(inner, cfg)

    def __init__(
        self,
        machine: Machine,
        *,
        policy: SelectionPolicy | None = None,
        check=None,
    ):
        if getattr(self, "_initialized", False):
            return  # __new__ already ran __init__ before wrapping
        self._initialized = True
        self.machine = machine
        self.policy = policy or AutoPolicy()
        # If a capture session is already active without a modeled clock,
        # adopt this machine's critical-path clock so spans carry modeled
        # begin/duration automatically.
        active = obs.tracer()
        if active is not None and active.modeled_clock is None:
            active.modeled_clock = machine.ledger.critical_time
        pr, pc = near_square_shape(machine.p)
        self.home_ranks2d = np.arange(machine.p).reshape(pr, pc)
        self._replication_cache: dict = {}
        self._invariant_ids: set[int] = set()
        # strong references keep invariant ids from being recycled by the GC
        self._invariants: list[DistMat] = []
        # the registered base matrices (not their transposes): what elastic
        # recovery repairs and rebuilds on the survivor grid
        self._invariant_bases: list[DistMat] = []
        #: plans chosen per product, newest last (diagnostics / tests)
        self.plan_log: list = []
        #: set by the memory ladder's drop-redundancy rung; cleared on re-arm
        self._redundancy_dropped = False

    # -- Engine protocol -------------------------------------------------------

    def matrix(
        self,
        nrows: int,
        ncols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: dict[str, np.ndarray],
        monoid: Monoid,
    ) -> DistMat:
        local = SpMat(nrows, ncols, rows, cols, vals, monoid)
        return DistMat.distribute(local, self.machine, self.home_ranks2d)

    def adjacency(self, graph) -> DistMat:
        mat = DistMat.distribute(
            graph.adjacency(),
            self.machine,
            self.home_ranks2d,
            redundancy=self.machine.elastic,
            # while the memory ladder has replicas dropped, new invariants
            # keep the source fallback but skip the replica copies
            replicate=not self._redundancy_dropped,
        )
        self.register_invariant(mat)
        return mat

    def register_invariant(self, mat: DistMat) -> None:
        """Mark ``mat`` (and its memoized transpose) as loop-invariant."""
        self._invariants.extend([mat, mat.transpose()])
        self._invariant_bases.append(mat)
        self._invariant_ids.add(id(mat))
        self._invariant_ids.add(id(mat.transpose()))
        # invariants are the long-lived resting state: exactly what the
        # memory manager should evict to the spill store under pressure
        memory = getattr(self.machine, "memory", None)
        if memory is not None:
            memory.register(mat, label="invariant")
            memory.register(mat.transpose(), label="invariant-t")

    def release_invariants(self) -> None:
        """Forget every registered loop-invariant operand and its replicas.

        The serving layer calls this when the pinned graph is replaced: the
        old adjacency's replication cache and elastic redundancy would
        otherwise be kept alive (and grow) across graph versions.
        """
        self._invariants.clear()
        self._invariant_bases.clear()
        self._invariant_ids.clear()
        self._replication_cache.clear()

    def spgemm(
        self,
        a: DistMat,
        b: DistMat,
        spec: MatMulSpec,
        *,
        mask=None,
        mask_complement: bool = False,
    ) -> tuple[DistMat, int]:
        # deferred import: repro.spgemm.variants itself imports repro.dist
        from repro.spgemm.variants import execute_plan

        # The variant executor slices per-frame sub-masks from a node-local
        # mask.  No communication is charged for it: the mask is always a
        # matrix already resting in the home layout (a previous product's
        # output), and each sub-mask is consumed by the rank that assembles
        # the matching C frame — the mask travels with output ownership,
        # like the stationary-mask convention of GraphBLAS runtimes.
        local_mask = None
        if mask is not None:
            local_mask = mask.gather(charge=False) if isinstance(mask, DistMat) else mask
        # in-flight operands become most-recently-used so relief-eviction
        # under memory pressure picks colder matrices first
        memory = getattr(self.machine, "memory", None)
        if memory is not None:
            memory.touch(a)
            memory.touch(b)
        amortized = frozenset(
            (["A"] if id(a) in self._invariant_ids else [])
            + (["B"] if id(b) in self._invariant_ids else [])
        )
        with obs.span(
            "spgemm",
            cat="spgemm",
            phase=spec.name,
            m=a.nrows,
            k=a.ncols,
            n=b.ncols,
            nnz_a=a.nnz,
            nnz_b=b.nnz,
        ) as sp:
            plan = self.policy.select(
                self.machine,
                a.nrows,
                a.ncols,
                b.ncols,
                a.nnz,
                b.nnz,
                amortized=amortized,
            )
            self.plan_log.append(plan)
            # Serve replicas from the cache only for invariant operands:
            # frontier matrices are freed every iteration and Python may
            # recycle their ids, so caching them would risk stale hits (and
            # buys nothing).
            replicated_operand = {"A": a, "B": b}.get(plan.x)
            cache = (
                self._replication_cache
                if replicated_operand is not None
                and id(replicated_operand) in self._invariant_ids
                else None
            )
            if memory is not None and memory.chunk_staging:
                from repro.sparse.spgemm import staged_chunks

                staging = staged_chunks(memory.store())
            else:
                staging = nullcontext()
            with staging:
                out, ops = execute_plan(
                    plan,
                    a,
                    b,
                    spec,
                    self.home_ranks2d,
                    mask=local_mask,
                    mask_complement=mask_complement,
                    replication_cache=cache,
                )
            # fixed per-product setup overhead on every rank (see CostParams)
            self.machine.charge_overhead(self.machine.cost.product_overhead)
            if obs.enabled():
                variant = plan.describe()
                sp.set(variant=variant, product_nnz=out.nnz, ops=ops)
                obs.count("spgemm.products", 1.0, variant=variant, phase=spec.name)
                obs.count(
                    "spgemm.product_nnz", float(out.nnz), variant=variant, phase=spec.name
                )
                obs.count("spgemm.ops", float(ops), variant=variant, phase=spec.name)
        return out, ops

    def gather(self, mat: DistMat) -> SpMat:
        return mat.gather(charge=True)

    # -- fault tolerance -------------------------------------------------------

    def recover(self) -> None:
        """Reset transient state after an injected failure, before a retry.

        Drops the replication cache (replicas are rebuilt — and recharged —
        on the next product, mirroring a restarted rank that lost its
        copies) and clears the machine's memory accounting so a half-done
        batch's allocations don't eat the budget of its retry.  Registered
        invariants and resting "home" layouts survive: they are the durable
        inputs a restart would reload.
        """
        self._replication_cache.clear()
        self.machine.reset_memory()
        if obs.enabled():
            obs.count("engine.recoveries", 1.0)

    def recover_from(self, failure):
        """Elastic recovery: shrink onto the survivors of ``failure``.

        Repairs the dead ranks' invariant blocks (checksummed replicas,
        falling back to source re-materialization), shrinks the machine to
        the nearest grid the selection policy can run on, rebuilds the home
        layout and every registered invariant there, and returns the
        :class:`~repro.elastic.RecoveryReport`.  Requires
        ``machine.elastic``; raises
        :class:`~repro.elastic.RecoveryError` when reconstruction is
        impossible (caller falls back to retry/restart).
        """
        # deferred import: repro.elastic.recovery imports this module
        from repro.elastic.recovery import recover_engine

        return recover_engine(self, failure)

    # -- memory-pressure ladder hooks -----------------------------------------

    def redundancy_words(self) -> int:
        """Resident replica words across registered invariants."""
        return sum(mat.replica_words() for mat in self._invariant_bases)

    def drop_redundancy(self) -> int:
        """Drop every invariant's replica redundancy; return words freed.

        A ladder rung: recovery degrades to source re-materialization until
        :meth:`rearm_redundancy` re-installs the replicas.  Also arms a
        guard so invariants registered *after* the drop (a replaced serving
        graph, say) stay replica-free while pressure persists.
        """
        self._redundancy_dropped = True
        return sum(mat.drop_redundancy() for mat in self._invariant_bases)

    def rearm_redundancy(self) -> bool:
        """Re-install replica redundancy dropped under memory pressure."""
        self._redundancy_dropped = False
        rearmed = False
        for mat in self._invariant_bases:
            rearmed = mat.rearm_redundancy() or rearmed
        return rearmed


if TYPE_CHECKING:
    from repro.core.engine import Engine

    # static proof that DistributedEngine satisfies the Engine protocol
    _DISTRIBUTED_IS_ENGINE: Engine = DistributedEngine(Machine(1))
