"""repro.obs — structured tracing + metrics for the whole stack.

Self-contained (stdlib-only) observability subsystem:

* :mod:`repro.obs.tracer` — nested spans on two clocks (wall + modeled
  α-β ledger time), Chrome ``trace_event`` / JSONL export;
* :mod:`repro.obs.metrics` — labeled counter / gauge / histogram series;
* :mod:`repro.obs.api` — the zero-overhead-when-disabled global hooks
  that instrumented code calls (``obs.span``, ``obs.count``, ...);
* :mod:`repro.obs.timeline` — text timeline + ledger reconciliation.

Typical capture::

    from repro import obs

    session = obs.enable()
    obs.set_modeled_clock(machine.ledger.critical_time)
    ...  # run the traced workload
    obs.disable()
    obs.write_chrome_trace(session.tracer, "trace.json")
"""

from repro.obs.api import (
    NULL_SPAN,
    Session,
    Timer,
    complete,
    count,
    default_metrics,
    disable,
    enable,
    enabled,
    gauge,
    metrics,
    observe,
    set_attr,
    set_modeled_clock,
    span,
    timed,
    tracer,
    use,
)
from repro.obs.metrics import Histogram, Metrics
from repro.obs.timeline import reconcile, render_timeline
from repro.obs.tracer import (
    Span,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    # core types
    "Span",
    "Tracer",
    "Metrics",
    "Histogram",
    "Session",
    "Timer",
    "NULL_SPAN",
    # export
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    # views
    "render_timeline",
    "reconcile",
    # hook API
    "enabled",
    "enable",
    "disable",
    "use",
    "tracer",
    "metrics",
    "default_metrics",
    "span",
    "complete",
    "count",
    "gauge",
    "observe",
    "set_attr",
    "set_modeled_clock",
    "timed",
]
