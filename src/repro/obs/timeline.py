"""Human-readable views over a trace: text timeline + ledger reconciliation."""

from __future__ import annotations

from repro.obs.tracer import Span, Tracer

__all__ = ["render_timeline", "reconcile"]


def _fmt_seconds(x: float | None) -> str:
    if x is None:
        return "      -  "
    if x >= 1.0:
        return f"{x:8.3f}s"
    if x >= 1e-3:
        return f"{x * 1e3:7.2f}ms"
    return f"{x * 1e6:7.1f}us"


def _span_label(sp: Span) -> str:
    label = sp.name
    hints = []
    for key in ("phase", "variant", "index", "sources", "batch_size"):
        if key in sp.args:
            hints.append(f"{key}={sp.args[key]}")
    if hints:
        label += " [" + ", ".join(hints) + "]"
    return label


def render_timeline(
    tracer: Tracer,
    cats: tuple[str, ...] = ("run", "batch", "phase", "spgemm"),
) -> str:
    """Indented text tree of the trace, one line per span of interest.

    Only spans whose category is in ``cats`` are shown (collectives and
    selector chatter are summarized better by the attribution report).
    Each line shows modeled and wall durations.
    """
    shown = [sp for sp in tracer.spans if sp.cat in cats]
    if not shown:
        return "(no spans recorded)\n"
    # Indent by depth *within the shown set*: count shown ancestors.
    by_index = {sp.index: sp for sp in tracer.spans}
    shown_idx = {sp.index for sp in shown}

    def shown_depth(sp: Span) -> int:
        d = 0
        parent = sp.parent
        while parent is not None:
            if parent in shown_idx:
                d += 1
            parent = by_index[parent].parent
        return d

    lines = [f"{'modeled':>9}  {'wall':>9}  span"]
    for sp in shown:
        indent = "  " * shown_depth(sp)
        lines.append(
            f"{_fmt_seconds(sp.modeled_dur)}  {_fmt_seconds(sp.wall_dur)}  "
            f"{indent}{_span_label(sp)}"
        )
    return "\n".join(lines) + "\n"


def reconcile(tracer: Tracer, ledger) -> dict:
    """Compare summed root-span modeled time against the ledger's
    critical-path total.

    For a machine that was fresh when tracing began, the modeled clock
    only advances inside charges, all of which occur within some root
    span — so the two totals should agree (the acceptance bar is 1%).
    Returns ``{"span_modeled_seconds", "ledger_seconds", "relative_error"}``.
    """
    span_total = sum(
        sp.modeled_dur or 0.0 for sp in tracer.roots() if sp.modeled_dur is not None
    )
    ledger_total = float(ledger.critical_time())
    denom = max(abs(ledger_total), 1e-30)
    return {
        "span_modeled_seconds": span_total,
        "ledger_seconds": ledger_total,
        "relative_error": abs(span_total - ledger_total) / denom,
    }
