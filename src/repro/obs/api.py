"""Global observability hooks: zero overhead unless a session is active.

Instrumented code throughout the stack calls this module::

    from repro.obs import api as obs

    if obs.enabled():                        # one truthiness check when off
        obs.count("machine.words", w, category="bcast")
    with obs.span("spgemm", cat="spgemm") as sp:   # NULL_SPAN when off
        ...
        sp.set(variant=plan.describe())

When no session is active every hook is a no-op: :func:`span` returns the
shared :data:`NULL_SPAN` singleton without allocating, and
:func:`count` / :func:`gauge` / :func:`observe` / :func:`complete` /
:func:`set_attr` return immediately.  Hot paths additionally guard with
:func:`enabled` so they do not even build argument dicts.

Sessions form a stack: :func:`enable` pushes a (tracer, metrics) pair that
receives all events until :func:`disable` pops it.  :func:`use` is the
context-manager form, which also lets a component capture its own private
stream (see ``repro.analysis._trace.RecordingEngine``) without touching an
outer session.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.obs.metrics import Metrics
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Session",
    "NULL_SPAN",
    "enabled",
    "enable",
    "disable",
    "use",
    "tracer",
    "metrics",
    "default_metrics",
    "span",
    "complete",
    "count",
    "gauge",
    "observe",
    "set_attr",
    "set_modeled_clock",
    "timed",
    "Timer",
]


@dataclass
class Session:
    """One active capture: a tracer plus a metrics registry."""

    tracer: Tracer
    metrics: Metrics


class _NullSpan:
    """Shared no-op stand-in for a span when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()

_SESSIONS: list[Session] = []

#: registry that explicit :func:`timed` calls fall back to with no session
#: active — benchmark timers always record somewhere.
_DEFAULT_METRICS = Metrics()


# -- session management -------------------------------------------------------


def enabled() -> bool:
    """True when a capture session is active (the hot-path guard)."""
    return bool(_SESSIONS)


def enable(
    tracer: Tracer | None = None,
    metrics: Metrics | None = None,
    modeled_clock: Callable[[], float] | None = None,
) -> Session:
    """Push a capture session; every hook now records into it."""
    session = Session(
        tracer=tracer or Tracer(modeled_clock=modeled_clock),
        metrics=metrics or Metrics(),
    )
    if modeled_clock is not None and session.tracer.modeled_clock is None:
        session.tracer.modeled_clock = modeled_clock
    _SESSIONS.append(session)
    return session


def disable() -> Session | None:
    """Pop the innermost session (no-op when none is active)."""
    return _SESSIONS.pop() if _SESSIONS else None


@contextmanager
def use(
    tracer: Tracer | None = None,
    metrics: Metrics | None = None,
    modeled_clock: Callable[[], float] | None = None,
) -> Iterator[Session]:
    """Context-manager capture session (private stream while inside)."""
    session = enable(tracer, metrics, modeled_clock)
    try:
        yield session
    finally:
        if not _SESSIONS or _SESSIONS[-1] is not session:
            raise RuntimeError("observability session stack corrupted")
        _SESSIONS.pop()


def tracer() -> Tracer | None:
    """The active session's tracer, or None."""
    return _SESSIONS[-1].tracer if _SESSIONS else None


def metrics() -> Metrics | None:
    """The active session's metrics registry, or None."""
    return _SESSIONS[-1].metrics if _SESSIONS else None


def default_metrics() -> Metrics:
    """The always-available fallback registry used by :func:`timed`."""
    return _DEFAULT_METRICS


def set_modeled_clock(clock: Callable[[], float]) -> None:
    """Attach the modeled clock (e.g. ``machine.ledger.critical_time``) to
    the active tracer.  Raises when no session is active."""
    if not _SESSIONS:
        raise RuntimeError("no active observability session (call obs.enable())")
    _SESSIONS[-1].tracer.modeled_clock = clock


# -- tracing hooks ------------------------------------------------------------


def span(name: str, cat: str = "", **attrs):
    """Open a span on the active tracer; :data:`NULL_SPAN` when disabled."""
    if not _SESSIONS:
        return NULL_SPAN
    return _SESSIONS[-1].tracer.span(name, cat, **attrs)


def complete(
    name: str,
    cat: str = "",
    *,
    modeled_ts: float | None = None,
    modeled_dur: float | None = None,
    wall_ts: float | None = None,
    wall_dur: float = 0.0,
    args: dict | None = None,
) -> Span | None:
    """Record an already-finished operation on the active tracer."""
    if not _SESSIONS:
        return None
    return _SESSIONS[-1].tracer.complete(
        name,
        cat,
        modeled_ts=modeled_ts,
        modeled_dur=modeled_dur,
        wall_ts=wall_ts,
        wall_dur=wall_dur,
        args=args,
    )


def set_attr(**attrs) -> None:
    """Set attributes on the innermost open span, if any."""
    if not _SESSIONS:
        return
    current = _SESSIONS[-1].tracer.current()
    if current is not None:
        current.set(**attrs)


# -- metric hooks -------------------------------------------------------------


def count(name: str, value: float = 1.0, **labels) -> None:
    if _SESSIONS:
        _SESSIONS[-1].metrics.count(name, value, **labels)


def gauge(name: str, value: float, **labels) -> None:
    if _SESSIONS:
        _SESSIONS[-1].metrics.gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    if _SESSIONS:
        _SESSIONS[-1].metrics.observe(name, value, **labels)


# -- the benchmark timer helper ----------------------------------------------


class Timer:
    """Wall-clock timer that lands its measurement in the metrics stream.

    Unlike the passive hooks above, an explicitly-constructed timer always
    records: into the active session's registry when one exists, else into
    :func:`default_metrics`.  The measured duration is available as
    ``.seconds`` after the block exits — a drop-in replacement for the
    benches' hand-rolled ``time.perf_counter()`` pairs.
    """

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.seconds: float | None = None
        self._t0: float | None = None

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.seconds = time.perf_counter() - self._t0
        registry = _SESSIONS[-1].metrics if _SESSIONS else _DEFAULT_METRICS
        registry.observe(self.name, self.seconds, **self.labels)
        if _SESSIONS:
            tr = _SESSIONS[-1].tracer
            tr.complete(
                self.name,
                cat="timer",
                wall_ts=tr.now() - self.seconds,
                wall_dur=self.seconds,
                args=dict(self.labels),
            )
        return False


def timed(name: str, **labels) -> Timer:
    """``with obs.timed("bench.x", variant="2D") as t: ...`` → ``t.seconds``."""
    return Timer(name, labels)
