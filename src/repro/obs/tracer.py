"""Nested spans on two clocks, exportable as Chrome ``trace_event`` JSON.

A :class:`Tracer` records a tree of :class:`Span` records, each carrying

* **wall time** — ``time.perf_counter()`` seconds relative to the tracer's
  epoch (what the Python process actually spent), and
* **modeled time** — the simulated machine's α-β critical-path clock (what
  the modeled p-rank machine spent), read from an attached
  ``modeled_clock`` callable when one is set (usually
  ``machine.ledger.critical_time``).

Both timelines serialize to the Chrome ``trace_event`` format (the JSON
that ``chrome://tracing`` and https://ui.perfetto.dev load) as two
processes — pid 1 "wall clock", pid 2 "modeled (α-β)" — so a single file
shows where the Python run *and* the modeled machine spent their time.
A flat JSONL stream of the same spans is available for ad-hoc tooling.

The module is self-contained (stdlib only) so any layer of the stack can
import it without dependency cycles.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]

#: Chrome-trace "process" ids for the two timelines.
PID_WALL = 1
PID_MODELED = 2


@dataclass
class Span:
    """One traced operation (possibly containing child spans)."""

    name: str
    cat: str
    index: int  # position in the tracer's span list (creation order)
    parent: int | None  # index of the enclosing span, None for roots
    depth: int  # nesting depth at open (0 for roots)
    wall_ts: float  # seconds since the tracer's wall epoch
    wall_dur: float | None = None  # None while the span is open
    modeled_ts: float | None = None  # modeled seconds at open (clock attached)
    modeled_dur: float | None = None
    args: dict = field(default_factory=dict)

    def set(self, **attrs) -> None:
        """Attach attributes to the span (shows up under ``args``)."""
        self.args.update(attrs)

    @property
    def closed(self) -> bool:
        return self.wall_dur is not None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "wall_ts": self.wall_ts,
            "wall_dur": self.wall_dur,
            "modeled_ts": self.modeled_ts,
            "modeled_dur": self.modeled_dur,
            "args": {k: _jsonable(v) for k, v in self.args.items()},
        }


class Tracer:
    """Collects spans; one per capture session.

    Parameters
    ----------
    modeled_clock:
        Optional zero-argument callable returning the current *modeled*
        time in seconds (monotone non-decreasing).  Spans opened while a
        clock is attached record modeled begin/duration alongside wall
        time.  Attach the simulator's critical-path clock with
        ``tracer.modeled_clock = machine.ledger.critical_time``.
    """

    def __init__(self, modeled_clock: Callable[[], float] | None = None) -> None:
        self.modeled_clock = modeled_clock
        self.spans: list[Span] = []  # creation order; closed in LIFO order
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()

    # -- recording -----------------------------------------------------------

    def now(self) -> float:
        """Wall seconds since this tracer's epoch."""
        return time.perf_counter() - self._epoch

    def current(self) -> Span | None:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, cat: str = "", **attrs) -> Span:
        parent = self._stack[-1].index if self._stack else None
        sp = Span(
            name=name,
            cat=cat,
            index=len(self.spans),
            parent=parent,
            depth=len(self._stack),
            wall_ts=self.now(),
            modeled_ts=self.modeled_clock() if self.modeled_clock else None,
            args=dict(attrs),
        )
        self.spans.append(sp)
        self._stack.append(sp)
        return sp

    def end(self, span: Span) -> Span:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span stack corrupted: closing {span.name!r} but the "
                f"innermost open span is "
                f"{self._stack[-1].name if self._stack else None!r}"
            )
        self._stack.pop()
        span.wall_dur = self.now() - span.wall_ts
        if span.modeled_ts is not None and self.modeled_clock is not None:
            span.modeled_dur = self.modeled_clock() - span.modeled_ts
        return span

    @contextmanager
    def span(self, name: str, cat: str = "", **attrs) -> Iterator[Span]:
        sp = self.begin(name, cat, **attrs)
        try:
            yield sp
        finally:
            self.end(sp)

    def complete(
        self,
        name: str,
        cat: str = "",
        *,
        modeled_ts: float | None = None,
        modeled_dur: float | None = None,
        wall_ts: float | None = None,
        wall_dur: float = 0.0,
        args: dict | None = None,
    ) -> Span:
        """Record an already-finished operation (e.g. one modeled collective).

        The span is parented under the innermost open span but never enters
        the open stack.  ``wall_ts`` defaults to "now" — pass the start time
        explicitly when the operation had a real wall duration.
        """
        sp = Span(
            name=name,
            cat=cat,
            index=len(self.spans),
            parent=self._stack[-1].index if self._stack else None,
            depth=len(self._stack),
            wall_ts=self.now() if wall_ts is None else wall_ts,
            wall_dur=wall_dur,
            modeled_ts=modeled_ts,
            modeled_dur=modeled_dur,
            args=dict(args or {}),
        )
        self.spans.append(sp)
        return sp

    # -- queries --------------------------------------------------------------

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.index]

    def find(self, name: str | None = None, cat: str | None = None) -> list[Span]:
        return [
            s
            for s in self.spans
            if (name is None or s.name == name) and (cat is None or s.cat == cat)
        ]


# ---------------------------------------------------------------------------
# export
# ---------------------------------------------------------------------------


def _jsonable(v):
    """Coerce an attribute value to something JSON-serializable."""
    if v is None or isinstance(v, (bool, int, float, str)):
        return v
    if isinstance(v, (list, tuple, set, frozenset)):
        return [_jsonable(x) for x in v]
    if isinstance(v, dict):
        return {str(k): _jsonable(x) for k, x in v.items()}
    try:  # numpy scalars expose item() without us importing numpy here
        return _jsonable(v.item())
    except AttributeError:
        return str(v)


def chrome_trace(tracer: Tracer) -> dict:
    """Render the tracer as a Chrome ``trace_event`` JSON object.

    Every span becomes one complete ("X") event on the wall-clock process
    (pid 1); spans with modeled times add a second event on the modeled
    process (pid 2).  On the modeled process, collective events live on
    their own thread rows (tid ≥ 1): a collective's modeled start is the
    *participant* maximum, which may precede the enclosing span's *global*
    maximum, and collectives over disjoint rank groups genuinely overlap
    (the machine is parallel) — so overlapping collectives are spread over
    as many rows as the concurrency requires, each row staying properly
    nested.  The algorithm-span row (tid 0) nests by construction.
    Timestamps are microseconds, the format's native unit.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID_WALL,
            "tid": 0,
            "args": {"name": "wall clock"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID_MODELED,
            "tid": 0,
            "args": {"name": "modeled (alpha-beta machine)"},
        },
    ]
    collectives: list[dict] = []
    for sp in tracer.spans:
        args = {k: _jsonable(v) for k, v in sp.args.items()}
        events.append(
            {
                "name": sp.name,
                "cat": sp.cat or "span",
                "ph": "X",
                "pid": PID_WALL,
                "tid": 0,
                "ts": round(sp.wall_ts * 1e6, 3),
                "dur": round((sp.wall_dur or 0.0) * 1e6, 3),
                "args": args,
            }
        )
        if sp.modeled_ts is not None:
            ev = {
                "name": sp.name,
                "cat": sp.cat or "span",
                "ph": "X",
                "pid": PID_MODELED,
                "tid": 0,
                "ts": round(sp.modeled_ts * 1e6, 3),
                "dur": round((sp.modeled_dur or 0.0) * 1e6, 3),
                "args": args,
            }
            if sp.cat == "collective":
                collectives.append(ev)
            else:
                events.append(ev)
    # Greedy lane assignment: each collective goes on the first row whose
    # last event has ended (rows hold disjoint intervals, trivially nested).
    collectives.sort(key=lambda e: (e["ts"], -e["dur"]))
    lane_ends: list[float] = []
    eps = 1e-2  # µs; absorbs the 3-decimal rounding above
    for ev in collectives:
        for i, end in enumerate(lane_ends):
            if end <= ev["ts"] + eps:
                ev["tid"] = 1 + i
                lane_ends[i] = ev["ts"] + ev["dur"]
                break
        else:
            lane_ends.append(ev["ts"] + ev["dur"])
            ev["tid"] = len(lane_ends)
        events.append(ev)
    for i in range(len(lane_ends)):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID_MODELED,
                "tid": 1 + i,
                "args": {"name": "collectives" if i == 0 else f"collectives +{i}"},
            }
        )
    events.sort(key=lambda e: (e["pid"], e["tid"], e.get("ts", -1.0), -e.get("dur", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(trace: dict) -> None:
    """Raise :class:`ValueError` unless ``trace`` is a well-formed trace.

    Checks the schema (``traceEvents`` list of events with the required
    fields), JSON-serializability, and per-``(pid, tid)`` monotonic
    consistency: every complete event has finite ``ts ≥ 0`` and
    ``dur ≥ 0``, and events on one thread row are properly nested (any
    two either disjoint or one containing the other).
    """
    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        raise ValueError("trace must be a dict with a 'traceEvents' list")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"trace is not JSON-serializable: {exc}") from exc
    rows: dict[tuple, list[tuple[float, float]]] = {}
    for i, ev in enumerate(trace["traceEvents"]):
        if not isinstance(ev, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {i} missing required field {key!r}")
        if ev["ph"] == "M":
            continue
        if ev["ph"] != "X":
            raise ValueError(f"event {i} has unsupported phase {ev['ph']!r}")
        ts, dur = ev.get("ts"), ev.get("dur")
        if not isinstance(ts, (int, float)) or not ts >= 0:
            raise ValueError(f"event {i} has invalid ts {ts!r}")
        if not isinstance(dur, (int, float)) or not dur >= 0:
            raise ValueError(f"event {i} has invalid dur {dur!r}")
        rows.setdefault((ev["pid"], ev["tid"]), []).append((float(ts), float(dur)))
    eps = 1e-2  # µs; absorbs the 3-decimal rounding of export
    for (pid, tid), ivals in rows.items():
        ivals.sort(key=lambda x: (x[0], -x[1]))
        stack: list[float] = []  # end timestamps of enclosing intervals
        prev_ts = -1.0
        for ts, dur in ivals:
            if ts < prev_ts - eps:
                raise ValueError(f"events on pid={pid} tid={tid} not sorted by ts")
            prev_ts = ts
            while stack and stack[-1] <= ts + eps:
                stack.pop()
            if stack and ts + dur > stack[-1] + eps:
                raise ValueError(
                    f"event at ts={ts} dur={dur} on pid={pid} tid={tid} "
                    f"overlaps its enclosing interval (ends {stack[-1]})"
                )
            stack.append(ts + dur)


def write_chrome_trace(tracer: Tracer, path) -> dict:
    """Validate and write the Chrome trace JSON; returns the trace object."""
    trace = chrome_trace(tracer)
    validate_chrome_trace(trace)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return trace


def write_jsonl(tracer: Tracer, path, metrics=None) -> int:
    """Write one JSON object per line: spans, then metric samples.

    Returns the number of lines written.  ``metrics`` may be a
    :class:`~repro.obs.metrics.Metrics` registry (its snapshot rows are
    appended with ``"kind": "metric"``).
    """
    n = 0
    with open(path, "w") as fh:
        for sp in tracer.spans:
            fh.write(json.dumps({"kind": "span", **sp.to_dict()}) + "\n")
            n += 1
        if metrics is not None:
            for row in metrics.snapshot():
                fh.write(json.dumps({"kind": "metric", **row}) + "\n")
                n += 1
    return n
