"""Labeled metric series: counters, gauges, and histograms.

A :class:`Metrics` registry keeps one *series* per ``(name, labels)`` pair,
e.g. ``spgemm.products{variant="3D-B,AC(4x2x2)", phase="bellman-ford"}``.
Labels are free-form keyword arguments; a series' identity is the sorted
tuple of its label items, so label order at the call site never matters.

* **counters** accumulate (``count``) — traffic volumes, product counts;
* **gauges** overwrite (``gauge``) — last-seen values like load imbalance;
* **histograms** summarize observations (``observe``) — wall times from
  the :func:`~repro.obs.api.timed` benchmark helper.

Aggregation across labels uses :meth:`Metrics.total` (sum of counter
series matching a label subset) and :meth:`Metrics.series` (all series of
one name).  Like the tracer, this module is stdlib-only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Histogram", "Metrics"]

LabelKey = tuple  # tuple of sorted (key, value) pairs


@dataclass
class Histogram:
    """Summary statistics of a stream of observations."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def _key(labels: dict) -> LabelKey:
    return tuple(sorted(labels.items()))


class Metrics:
    """A registry of labeled counter / gauge / histogram series."""

    def __init__(self) -> None:
        self._counters: dict[str, dict[LabelKey, float]] = {}
        self._gauges: dict[str, dict[LabelKey, float]] = {}
        self._histograms: dict[str, dict[LabelKey, Histogram]] = {}

    # -- writes ---------------------------------------------------------------

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        series = self._counters.setdefault(name, {})
        k = _key(labels)
        series[k] = series.get(k, 0.0) + float(value)

    def gauge(self, name: str, value: float, **labels) -> None:
        self._gauges.setdefault(name, {})[_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        series = self._histograms.setdefault(name, {})
        k = _key(labels)
        hist = series.get(k)
        if hist is None:
            hist = series[k] = Histogram()
        hist.observe(value)

    # -- reads ----------------------------------------------------------------

    def get_count(self, name: str, **labels) -> float:
        return self._counters.get(name, {}).get(_key(labels), 0.0)

    def get_gauge(self, name: str, **labels) -> float | None:
        return self._gauges.get(name, {}).get(_key(labels))

    def get_histogram(self, name: str, **labels) -> Histogram | None:
        return self._histograms.get(name, {}).get(_key(labels))

    def series(self, name: str) -> dict[LabelKey, object]:
        """All series registered under ``name`` (any metric type)."""
        for table in (self._counters, self._gauges, self._histograms):
            if name in table:
                return dict(table[name])
        return {}

    def total(self, name: str, **labels) -> float:
        """Sum of the counter series under ``name`` whose labels contain
        every given ``key=value`` pair — label aggregation.

        ``total("machine.words")`` sums every category;
        ``total("machine.words", category="bcast")`` selects one.
        """
        want = set(labels.items())
        return sum(
            v
            for k, v in self._counters.get(name, {}).items()
            if want.issubset(set(k))
        )

    def names(self) -> list[str]:
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def snapshot(self) -> list[dict]:
        """Flat rows for reports / JSONL export."""
        rows: list[dict] = []
        for name in sorted(self._counters):
            for k, v in sorted(self._counters[name].items(), key=lambda kv: repr(kv[0])):
                rows.append(
                    {"metric": name, "type": "counter", "labels": dict(k), "value": v}
                )
        for name in sorted(self._gauges):
            for k, v in sorted(self._gauges[name].items(), key=lambda kv: repr(kv[0])):
                rows.append(
                    {"metric": name, "type": "gauge", "labels": dict(k), "value": v}
                )
        for name in sorted(self._histograms):
            for k, h in sorted(self._histograms[name].items(), key=lambda kv: repr(kv[0])):
                rows.append(
                    {
                        "metric": name,
                        "type": "histogram",
                        "labels": dict(k),
                        "count": h.count,
                        "total": h.total,
                        "min": h.min if h.count else None,
                        "max": h.max if h.count else None,
                        "mean": h.mean,
                    }
                )
        return rows
