"""Commutative monoids over field arrays.

A :class:`Monoid` supplies the ``⊕`` operator of the generalized matrix
multiplication ``C = A •⟨⊕,f⟩ B`` (§3 of the paper).  Two operations are
required of every monoid:

* ``combine(a, b)`` — elementwise ``a ⊕ b`` on two equal-length field arrays
  (used for the elementwise matrix accumulations ``T ⊕ T̃`` and ``Z ⊗ Z̃``);
* ``reduce_by_key(keys, vals)`` — group the rows of ``vals`` by integer key
  and fold each group with ``⊕`` (the inner reduction of a sparse matmul).

The base class implements ``reduce_by_key`` by sorting and folding with
``combine`` in vectorized halving rounds, so any monoid defined purely by
``combine`` works out of the box.  Subclasses with more structure
(:class:`PlusMonoid`, :class:`MinMonoid`, :class:`MinWeightTieSumMonoid`)
override it with single-pass ``reduceat`` kernels.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.algebra.fields import FieldArray, empty_fields, take_fields

__all__ = [
    "Monoid",
    "PlusMonoid",
    "MinMonoid",
    "MaxMonoid",
    "MinWeightTieSumMonoid",
]


class Monoid:
    """A commutative monoid ``(S, ⊕)`` over columnar elements.

    Parameters
    ----------
    field_spec:
        Sequence of ``(name, dtype)`` pairs describing the carrier set's
        columnar representation.
    identity:
        Mapping of field name to the identity element's value for that field.
        The identity doubles as the implicit value of unstored sparse-matrix
        entries.
    """

    def __init__(
        self,
        field_spec: Sequence[tuple[str, object]],
        identity: Mapping[str, object],
    ) -> None:
        self.field_spec: tuple[tuple[str, np.dtype], ...] = tuple(
            (name, np.dtype(dt)) for name, dt in field_spec
        )
        names = [name for name, _ in self.field_spec]
        if sorted(identity.keys()) != sorted(names):
            raise ValueError(
                f"identity must define exactly fields {names}, got {sorted(identity)}"
            )
        self.identity: dict[str, object] = dict(identity)

    # -- required elementwise operator ------------------------------------

    def combine(self, a: FieldArray, b: FieldArray) -> FieldArray:
        """Elementwise ``a ⊕ b``.  Must be overridden."""
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.field_spec)

    def empty(self) -> FieldArray:
        """A zero-length field array with this monoid's schema."""
        return empty_fields(self.field_spec)

    def identity_array(self, length: int) -> FieldArray:
        """``length`` copies of the identity element."""
        return {
            name: np.full(length, self.identity[name], dtype=dtype)
            for name, dtype in self.field_spec
        }

    def is_identity(self, vals: FieldArray) -> np.ndarray:
        """Boolean mask of rows equal to the identity element.

        Identity rows are the "zeros" of a sparse matrix over this monoid
        and may be dropped from storage.  NaN-free fields compare with
        ``==``; infinities compare correctly under IEEE semantics.
        """
        masks = [
            vals[name] == np.asarray(self.identity[name], dtype=dtype)
            for name, dtype in self.field_spec
        ]
        out = masks[0]
        for m in masks[1:]:
            out = out & m
        return out

    def equal(self, a: FieldArray, b: FieldArray) -> np.ndarray:
        """Elementwise equality of two field arrays (all fields must match)."""
        masks = [a[name] == b[name] for name, _ in self.field_spec]
        out = masks[0]
        for m in masks[1:]:
            out = out & m
        return out

    # -- reduction ---------------------------------------------------------

    def reduce_by_key(
        self, keys: np.ndarray, vals: FieldArray
    ) -> tuple[np.ndarray, FieldArray]:
        """Fold rows sharing a key with ``⊕``.

        Parameters
        ----------
        keys:
            Integer array, one key per row of ``vals`` (need not be sorted).
        vals:
            Field array of elements to reduce.

        Returns
        -------
        (unique_keys, reduced_vals):
            ``unique_keys`` sorted ascending, ``reduced_vals`` aligned with it.
        """
        if len(keys) == 0:
            return keys[:0], self.empty()
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = take_fields(vals, order)
        return self._reduce_sorted(keys, vals)

    def _reduce_sorted(
        self, keys: np.ndarray, vals: FieldArray
    ) -> tuple[np.ndarray, FieldArray]:
        """Reduce presorted ``(keys, vals)``.  Generic log-depth pairwise fold.

        Each round combines the element at an even position within its key
        run with its right neighbour, halving every run; associativity and
        commutativity make the pairing order irrelevant.  O(nnz) combines in
        total, fully vectorized — correct for *any* monoid.
        """
        while len(keys):
            _, starts = np.unique(keys, return_index=True)
            if len(starts) == len(keys):
                return keys, vals
            seg_id = np.searchsorted(starts, np.arange(len(keys)), side="right") - 1
            pos = np.arange(len(keys)) - starts[seg_id]
            has_next = np.zeros(len(keys), dtype=bool)
            has_next[:-1] = keys[1:] == keys[:-1]
            left_idx = np.nonzero((pos % 2 == 0) & has_next)[0]
            merged = self.combine(
                take_fields(vals, left_idx), take_fields(vals, left_idx + 1)
            )
            vals = {name: np.asarray(col).copy() for name, col in vals.items()}
            for name in self.field_names:
                vals[name][left_idx] = merged[name]
            keep = np.ones(len(keys), dtype=bool)
            keep[left_idx + 1] = False
            keys = keys[keep]
            vals = take_fields(vals, keep.nonzero()[0])
        return keys, vals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ",".join(self.field_names)
        return f"{type(self).__name__}(fields=[{names}])"


class PlusMonoid(Monoid):
    """``(R, +)`` over a single numeric field (default field ``w``)."""

    def __init__(self, field: str = "w", dtype: object = np.float64) -> None:
        super().__init__([(field, dtype)], {field: 0})
        self._field = field

    def combine(self, a: FieldArray, b: FieldArray) -> FieldArray:
        return {self._field: a[self._field] + b[self._field]}

    def _reduce_sorted(self, keys, vals):
        uniq, starts = np.unique(keys, return_index=True)
        return uniq, {self._field: np.add.reduceat(vals[self._field], starts)}


class MinMonoid(Monoid):
    """``(W, min)`` over a single numeric field — the tropical additive monoid."""

    def __init__(self, field: str = "w", dtype: object = np.float64) -> None:
        super().__init__([(field, dtype)], {field: np.inf})
        self._field = field

    def combine(self, a: FieldArray, b: FieldArray) -> FieldArray:
        return {self._field: np.minimum(a[self._field], b[self._field])}

    def _reduce_sorted(self, keys, vals):
        uniq, starts = np.unique(keys, return_index=True)
        return uniq, {self._field: np.minimum.reduceat(vals[self._field], starts)}


class MaxMonoid(Monoid):
    """``(W ∪ {−∞}, max)`` over a single numeric field."""

    def __init__(self, field: str = "w", dtype: object = np.float64) -> None:
        super().__init__([(field, dtype)], {field: -np.inf})
        self._field = field

    def combine(self, a: FieldArray, b: FieldArray) -> FieldArray:
        return {self._field: np.maximum(a[self._field], b[self._field])}

    def _reduce_sorted(self, keys, vals):
        uniq, starts = np.unique(keys, return_index=True)
        return uniq, {self._field: np.maximum.reduceat(vals[self._field], starts)}


class MinWeightTieSumMonoid(Monoid):
    """The shared structure of the multpath and centpath monoids.

    ``x ⊕ y`` keeps the element whose ``weight_field`` is better (smaller when
    ``select="min"``, larger when ``select="max"``); on weight ties all
    ``sum_fields`` are added.  Multpath (§4.1.1) is the ``select="min"``
    instance over ``(w, m)``; centpath (§4.2.1) is the ``select="max"``
    instance over ``(w, p, c)``.

    The vectorized reduction sorts each key group by weight, finds the
    best weight, and sums payload fields over the tied prefix — one pass,
    no Python-level loops.
    """

    def __init__(
        self,
        field_spec: Sequence[tuple[str, object]],
        identity: Mapping[str, object],
        weight_field: str = "w",
        select: str = "min",
    ) -> None:
        super().__init__(field_spec, identity)
        if select not in ("min", "max"):
            raise ValueError(f"select must be 'min' or 'max', got {select!r}")
        if weight_field not in self.field_names:
            raise ValueError(f"weight field {weight_field!r} not in {self.field_names}")
        self.weight_field = weight_field
        self.select = select
        self.sum_fields = tuple(n for n in self.field_names if n != weight_field)

    # -- elementwise -------------------------------------------------------

    def combine(self, a: FieldArray, b: FieldArray) -> FieldArray:
        wa, wb = a[self.weight_field], b[self.weight_field]
        if self.select == "min":
            a_wins = wa < wb
            b_wins = wb < wa
        else:
            a_wins = wa > wb
            b_wins = wb > wa
        tie = ~(a_wins | b_wins)
        out: FieldArray = {
            self.weight_field: np.where(a_wins | tie, wa, wb),
        }
        for name in self.sum_fields:
            # On ties both payloads are summed; ∞ ties between two identity
            # elements sum identity payloads, preserving the identity law
            # because identity payloads are zero.
            merged = np.where(a_wins, a[name], b[name])
            merged = np.where(tie, a[name] + b[name], merged)
            dtype = dict(self.field_spec)[name]
            out[name] = merged.astype(dtype, copy=False)
        return out

    # -- reduction ---------------------------------------------------------

    def _reduce_sorted(self, keys, vals):
        w = vals[self.weight_field]
        # Re-sort within key groups by weight (best first).
        w_order = w if self.select == "min" else -w
        order = np.lexsort((w_order, keys))
        keys = keys[order]
        vals = take_fields(vals, order)
        w = vals[self.weight_field]

        uniq, starts = np.unique(keys, return_index=True)
        best_w = w[starts]
        # Broadcast each group's best weight to its members.
        seg_id = np.searchsorted(starts, np.arange(len(keys)), side="right") - 1
        tied = w == best_w[seg_id]

        out: FieldArray = {self.weight_field: best_w}
        for name in self.sum_fields:
            col = np.where(tied, vals[name], 0)
            out[name] = np.add.reduceat(col, starts).astype(
                dict(self.field_spec)[name], copy=False
            )
        return uniq, out
