"""The generalized matrix-multiplication operator ``C = A •⟨⊕,f⟩ B`` (§3).

A :class:`MatMulSpec` bundles the commutative monoid ``(D_C, ⊕)`` with the
bivariate map ``f : D_A × D_B → D_C`` so that every SpGEMM kernel — the
single-node vectorized one and all distributed variants — consumes the same
operator description, exactly as CTF's ``Kernel<W,M,M,u,f>`` does.

``f`` is vectorized: it receives two equal-length field arrays (the joined
nonzero pairs ``A(i,k)``/``B(k,j)``) and must return a field array with the
output monoid's schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.algebra.fields import FieldArray
from repro.algebra.monoid import Monoid

__all__ = ["MatMulSpec"]

ElementMap = Callable[[FieldArray, FieldArray], FieldArray]


@dataclass(frozen=True)
class MatMulSpec:
    """Specification of ``•⟨⊕,f⟩``.

    Attributes
    ----------
    monoid:
        The commutative monoid supplying ``⊕`` and the output element schema.
    f:
        Vectorized elementwise map combining joined A/B nonzero values.
    name:
        Human-readable label used in logs and cost reports.
    """

    monoid: Monoid
    f: ElementMap
    name: str = "matmul"

    def apply_f(self, a_vals: FieldArray, b_vals: FieldArray) -> FieldArray:
        """Apply ``f`` and validate the output schema in one place."""
        out = self.f(a_vals, b_vals)
        expected = set(self.monoid.field_names)
        if set(out.keys()) != expected:
            raise ValueError(
                f"{self.name}: f returned fields {sorted(out)} but monoid "
                f"requires {sorted(expected)}"
            )
        return out
