"""The centpath monoid and the Brandes action (§4.2).

A *centpath* ``x = (x.w, x.p, x.c)`` carries a path weight ``x.w``, a partial
centrality factor ``x.p`` (the paper's ζ contributions), and a counter
``x.c`` tracking how many shortest-path-DAG successors of a vertex have not
yet propagated their finalized score.  The operator ``⊗`` keeps the
*heavier* element and sums ``p`` and ``c`` on ties:

    x ⊗ y = x                             if x.w > y.w
          = y                             if x.w < y.w
          = (x.w, x.p + y.p, x.c + y.c)   if x.w = y.w

Max-weight selection is what discards invalid back-propagated contributions:
a candidate reaching vertex ``v`` carries weight ``τ(s,u) − A(v,u)`` which by
the triangle inequality is ≤ τ(s,v), with equality exactly when ``v`` lies on
a shortest path to ``u``.

The *monoid identity* is ``(−∞, 0, 0)`` (the element losing every max-weight
comparison).  The paper writes the empty marker as ``(∞, 0, 0)``; under the
published ``⊗`` table that element would be absorbing rather than neutral, so
the sparse implementations here use ``(−∞, 0, 0)`` as the unstored value —
the algorithms are unaffected because markers only ever denote "no entry".
"""

from __future__ import annotations

import numpy as np

from repro.algebra.fields import FieldArray
from repro.algebra.monoid import MinWeightTieSumMonoid

__all__ = ["CentpathMonoid", "CENTPATH", "brandes_action"]


class CentpathMonoid(MinWeightTieSumMonoid):
    """``(C, ⊗)`` with ``C = W × R × Z``: max-weight selection, tie-sum of p, c."""

    def __init__(self) -> None:
        super().__init__(
            field_spec=[("w", np.float64), ("p", np.float64), ("c", np.int64)],
            identity={"w": -np.inf, "p": 0.0, "c": 0},
            weight_field="w",
            select="max",
        )

    def make(self, w, p, c) -> FieldArray:
        """Build a centpath field array from weight/score/counter columns."""
        return {
            "w": np.asarray(w, dtype=np.float64),
            "p": np.asarray(p, dtype=np.float64),
            "c": np.asarray(c, dtype=np.int64),
        }


#: Module-level singleton; the monoid is stateless.
CENTPATH = CentpathMonoid()


def brandes_action(a: FieldArray, b: FieldArray) -> FieldArray:
    """The Brandes action ``g : C × W → C`` (§4.2.2).

    ``g((w, p, c), e) = (w − e, p, c)`` — back-propagate a centrality
    contribution across an edge of weight ``e``: a successor at distance
    ``w`` reaches its predecessor candidates at distance ``w − e``.

    ``a`` holds centpath columns (``w``, ``p``, ``c``); ``b`` the edge-weight
    column (``w``).
    """
    return {"w": a["w"] - b["w"], "p": a["p"], "c": a["c"]}
