"""Semirings, for the baseline algorithms expressed in classic GraphBLAS style.

The paper's §2.2 defines a semiring ``(T, ⊕, ⊗)``; CombBLAS-style betweenness
centrality and the textbook algebraic BFS/Bellman-Ford baselines use
semirings where both operands share one carrier set.  A :class:`Semiring`
here is a thin wrapper producing the equivalent :class:`MatMulSpec`, keeping
one kernel implementation for everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.algebra.fields import FieldArray
from repro.algebra.matmul import MatMulSpec
from repro.algebra.monoid import MinMonoid, Monoid, PlusMonoid

__all__ = ["Semiring", "TROPICAL", "REAL_PLUS_TIMES"]


@dataclass(frozen=True)
class Semiring:
    """A semiring ``(T, ⊕, ⊗)`` over a single-field carrier set.

    Attributes
    ----------
    add_monoid:
        The commutative monoid ``(T, ⊕)``.
    multiply:
        Vectorized ``⊗`` on two equal-length columns.
    name:
        Label for diagnostics.
    """

    add_monoid: Monoid
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    name: str = "semiring"

    def matmul_spec(self, field: str = "w") -> MatMulSpec:
        """The :class:`MatMulSpec` computing ``C = A •⟨⊕,⊗⟩ B``."""

        def f(a: FieldArray, b: FieldArray) -> FieldArray:
            return {field: self.multiply(a[field], b[field])}

        return MatMulSpec(monoid=self.add_monoid, f=f, name=self.name)


#: The tropical semiring (W, min, +): shortest-path relaxation (§2.3).
TROPICAL = Semiring(add_monoid=MinMonoid(), multiply=np.add, name="tropical")

#: The ordinary (R, +, ×) semiring: path counting / numeric SpGEMM.
REAL_PLUS_TIMES = Semiring(add_monoid=PlusMonoid(), multiply=np.multiply, name="real")
