"""Semirings, for the baseline algorithms expressed in classic GraphBLAS style.

The paper's §2.2 defines a semiring ``(T, ⊕, ⊗)``; CombBLAS-style betweenness
centrality and the textbook algebraic BFS/Bellman-Ford baselines use
semirings where both operands share one carrier set.  A :class:`Semiring`
here is a thin wrapper producing the equivalent :class:`MatMulSpec`, keeping
one kernel implementation for everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.algebra.fields import FieldArray
from repro.algebra.matmul import MatMulSpec
from repro.algebra.monoid import MaxMonoid, MinMonoid, Monoid, PlusMonoid

__all__ = [
    "Semiring",
    "SemiringAction",
    "left_project",
    "TROPICAL",
    "REAL_PLUS_TIMES",
    "MAX_MIN",
]


@dataclass(frozen=True)
class Semiring:
    """A semiring ``(T, ⊕, ⊗)`` over a single-field carrier set.

    Attributes
    ----------
    add_monoid:
        The commutative monoid ``(T, ⊕)``.
    multiply:
        Vectorized ``⊗`` on two equal-length columns.
    name:
        Label for diagnostics.
    """

    add_monoid: Monoid
    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    name: str = "semiring"

    def matmul_spec(self, field: str = "w", name: str | None = None) -> MatMulSpec:
        """The :class:`MatMulSpec` computing ``C = A •⟨⊕,⊗⟩ B``.

        ``name`` overrides the diagnostic label (e.g. an app using the
        tropical semiring under its own phase name) without losing the
        structural :class:`SemiringAction` the kernel dispatcher recognizes.
        """
        return MatMulSpec(
            monoid=self.add_monoid,
            f=SemiringAction(self.multiply, field),
            name=self.name if name is None else name,
        )


@dataclass(frozen=True)
class SemiringAction:
    """Picklable ``f(a, b) = {field: a.field ⊗ b.field}``.

    A closure would do for in-process execution, but specs must cross the
    :class:`~repro.machine.executor.ProcessExecutor` boundary by pickle.
    The structural form is also what makes a spec *recognizable*: the kernel
    dispatcher (:mod:`repro.sparse.dispatch`) routes any spec whose ``f`` is
    a :class:`SemiringAction` over a single-field plus/min/max monoid to a
    specialized structure-of-arrays fast path.
    """

    multiply: Callable[[np.ndarray, np.ndarray], np.ndarray]
    field: str

    def __call__(self, a: FieldArray, b: FieldArray) -> FieldArray:
        return {self.field: self.multiply(a[self.field], b[self.field])}


#: Backward-compatible private alias (pre-dispatch-tier name).
_SemiringAction = SemiringAction


def left_project(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``⊗`` keeping the left operand — label/frontier propagation.

    Connected components propagates the smallest reachable label with
    ``min``/``left_project``; the right operand only supplies structure.
    """
    return a


#: The tropical semiring (W, min, +): shortest-path relaxation (§2.3).
TROPICAL = Semiring(add_monoid=MinMonoid(), multiply=np.add, name="tropical")

#: The ordinary (R, +, ×) semiring: path counting / numeric SpGEMM.
REAL_PLUS_TIMES = Semiring(add_monoid=PlusMonoid(), multiply=np.multiply, name="real")

#: The bottleneck (max, min) semiring: widest-path / maximum-capacity routing.
MAX_MIN = Semiring(add_monoid=MaxMonoid(), multiply=np.minimum, name="max-min")
