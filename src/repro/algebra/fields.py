"""Field arrays: columnar storage for algebraic matrix elements.

A *field array* is a ``dict[str, numpy.ndarray]`` where every column has the
same length.  Matrix elements drawn from a monoid's carrier set (multpaths,
centpaths, plain weights) are stored this way instead of as numpy structured
arrays because columnar layout lets the reduction kernels use contiguous
vectorized primitives (``reduceat``, ``bincount``) that structured dtypes do
not support.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

FieldArray = dict[str, np.ndarray]

__all__ = [
    "FieldArray",
    "fields_length",
    "empty_fields",
    "full_fields",
    "take_fields",
    "concat_fields",
    "validate_fields",
]


def fields_length(vals: Mapping[str, np.ndarray]) -> int:
    """Common length of all columns in a field array (0 if no columns)."""
    lengths = {len(col) for col in vals.values()}
    if not lengths:
        return 0
    if len(lengths) != 1:
        raise ValueError(f"ragged field array: column lengths {sorted(lengths)}")
    return lengths.pop()


def empty_fields(field_spec: Sequence[tuple[str, np.dtype]]) -> FieldArray:
    """A zero-length field array matching ``field_spec``."""
    return {name: np.empty(0, dtype=dtype) for name, dtype in field_spec}


def full_fields(
    field_spec: Sequence[tuple[str, np.dtype]],
    length: int,
    values: Mapping[str, object],
) -> FieldArray:
    """A field array of ``length`` copies of the scalar element ``values``."""
    return {
        name: np.full(length, values[name], dtype=dtype) for name, dtype in field_spec
    }


def take_fields(vals: Mapping[str, np.ndarray], index: np.ndarray) -> FieldArray:
    """Gather rows ``index`` from every column."""
    return {name: col[index] for name, col in vals.items()}


def concat_fields(parts: Sequence[Mapping[str, np.ndarray]]) -> FieldArray:
    """Concatenate field arrays row-wise.  All parts must share columns."""
    parts = [p for p in parts if fields_length(p) > 0] or list(parts[:1])
    if not parts:
        raise ValueError("cannot concatenate zero field arrays with unknown schema")
    names = list(parts[0].keys())
    for p in parts[1:]:
        if list(p.keys()) != names:
            raise ValueError(f"schema mismatch: {list(p.keys())} vs {names}")
    return {name: np.concatenate([p[name] for p in parts]) for name in names}


def validate_fields(
    vals: Mapping[str, np.ndarray], field_spec: Sequence[tuple[str, np.dtype]]
) -> None:
    """Check that ``vals`` has exactly the columns in ``field_spec``."""
    expected = [name for name, _ in field_spec]
    if sorted(vals.keys()) != sorted(expected):
        raise ValueError(f"expected fields {expected}, got {sorted(vals.keys())}")
    fields_length(vals)
