"""Algebraic structures used by MFBC.

The paper formulates MFBC via commutative *monoids* rather than semirings
(§3): a generalized matrix multiplication ``C = A •⟨⊕,f⟩ B`` combines an
arbitrary elementwise map ``f : D_A × D_B → D_C`` with a commutative monoid
``(D_C, ⊕)``.  This package provides:

* :class:`~repro.algebra.monoid.Monoid` — commutative monoid over
  "field arrays" (dicts of named numpy columns), with a vectorized
  reduce-by-key used by every sparse-matmul kernel;
* the tropical / plus / min monoids used by baselines;
* the **multpath** monoid (§4.1.1) carrying (weight, multiplicity);
* the **centpath** monoid (§4.2.1) carrying (weight, partial centrality,
  counter);
* the Bellman-Ford and Brandes monoid *actions* (§4.1.2, §4.2.2);
* :class:`~repro.algebra.matmul.MatMulSpec` — the ``•⟨⊕,f⟩`` operator
  specification consumed by local and distributed SpGEMM kernels.
"""

from repro.algebra.fields import (
    concat_fields,
    empty_fields,
    fields_length,
    full_fields,
    take_fields,
)
from repro.algebra.monoid import (
    MinWeightTieSumMonoid,
    Monoid,
    PlusMonoid,
    MinMonoid,
    MaxMonoid,
)
from repro.algebra.multpath import MULTPATH, MultpathMonoid, bellman_ford_action
from repro.algebra.centpath import CENTPATH, CentpathMonoid, brandes_action
from repro.algebra.laws import (
    MonoidLawError,
    check_action_compatibility,
    check_monoid_laws,
)
from repro.algebra.matmul import MatMulSpec
from repro.algebra.semiring import (
    MAX_MIN,
    REAL_PLUS_TIMES,
    Semiring,
    SemiringAction,
    TROPICAL,
    left_project,
)

__all__ = [
    "concat_fields",
    "empty_fields",
    "fields_length",
    "full_fields",
    "take_fields",
    "Monoid",
    "PlusMonoid",
    "MinMonoid",
    "MaxMonoid",
    "MinWeightTieSumMonoid",
    "MultpathMonoid",
    "MULTPATH",
    "bellman_ford_action",
    "CentpathMonoid",
    "CENTPATH",
    "brandes_action",
    "MatMulSpec",
    "Semiring",
    "SemiringAction",
    "left_project",
    "TROPICAL",
    "REAL_PLUS_TIMES",
    "MAX_MIN",
    "check_monoid_laws",
    "check_action_compatibility",
    "MonoidLawError",
]
