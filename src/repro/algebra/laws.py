"""Algebraic-law checking for user-defined monoids and actions.

Everything in this library assumes its monoids are lawful — commutative,
associative, with a neutral identity — and that actions distribute over the
monoid the way §4's proofs require.  When you define a *new* monoid for a
new graph algorithm (the extensibility path the paper's conclusion invites),
run it through :func:`check_monoid_laws` first: a silently unlawful ⊕ breaks
reductions in data-dependent, hard-to-debug ways (results change with block
sizes and processor counts because reduction *order* changes).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.algebra.fields import FieldArray
from repro.algebra.monoid import Monoid

__all__ = ["MonoidLawError", "check_monoid_laws", "check_action_compatibility"]


class MonoidLawError(AssertionError):
    """A monoid law failed on a concrete counterexample."""


def _scalar(sample: dict) -> FieldArray:
    return {k: np.asarray([v]) for k, v in sample.items()}


def _tup(vals: FieldArray) -> tuple:
    return tuple(np.asarray(vals[k])[0] for k in sorted(vals))


def check_monoid_laws(
    monoid: Monoid,
    samples: Sequence[dict],
    *,
    check_reduction: bool = True,
) -> None:
    """Verify identity, commutativity, and associativity on ``samples``.

    Raises :class:`MonoidLawError` with the concrete counterexample.  With
    ``check_reduction`` (default), also verifies that the monoid's
    (possibly vectorized) ``reduce_by_key`` agrees with a left fold of
    ``combine`` on random permutations of the samples.
    """
    if not samples:
        raise ValueError("need at least one sample element")
    ident = _scalar(dict(monoid.identity))
    for a in samples:
        av = _scalar(a)
        if _tup(monoid.combine(av, ident)) != _tup(av):
            raise MonoidLawError(f"identity law failed: {a} ⊕ e != {a}")
        if _tup(monoid.combine(ident, av)) != _tup(av):
            raise MonoidLawError(f"identity law failed: e ⊕ {a} != {a}")
        for b in samples:
            bv = _scalar(b)
            ab = _tup(monoid.combine(av, bv))
            ba = _tup(monoid.combine(bv, av))
            if ab != ba:
                raise MonoidLawError(
                    f"commutativity failed: {a} ⊕ {b} = {ab} but "
                    f"{b} ⊕ {a} = {ba}"
                )
            for c in samples:
                cv = _scalar(c)
                left = _tup(monoid.combine(monoid.combine(av, bv), cv))
                right = _tup(monoid.combine(av, monoid.combine(bv, cv)))
                if left != right:
                    raise MonoidLawError(
                        f"associativity failed on ({a}, {b}, {c}): "
                        f"{left} != {right}"
                    )

    if check_reduction:
        rng = np.random.default_rng(0)
        for trial in range(5):
            order = rng.permutation(len(samples))
            keys = np.zeros(len(samples), dtype=np.int64)
            vals = {
                name: np.asarray(
                    [samples[i][name] for i in order], dtype=dtype
                )
                for name, dtype in monoid.field_spec
            }
            _, reduced = monoid.reduce_by_key(
                keys, {k: v.copy() for k, v in vals.items()}
            )
            acc = _scalar(samples[order[0]])
            for i in order[1:]:
                acc = monoid.combine(acc, _scalar(samples[i]))
            got = _tup(reduced) if len(reduced[monoid.field_names[0]]) else _tup(
                _scalar(dict(monoid.identity))
            )
            if got != _tup(acc):
                raise MonoidLawError(
                    f"reduce_by_key disagrees with sequential fold "
                    f"(permutation trial {trial}): {got} != {_tup(acc)}"
                )


def check_action_compatibility(
    action: Callable[[FieldArray, FieldArray], FieldArray],
    monoid_samples: Sequence[dict],
    weight_samples: Sequence[float],
    *,
    weight_field: str = "w",
) -> None:
    """Verify the (W, +) action law ``f(f(x, w1), w2) == f(x, w1 + w2)``.

    This is the property that makes §4's edge relaxations composable (a
    two-edge relaxation equals one relaxation by the combined weight).
    """
    for x in monoid_samples:
        xv = _scalar(x)
        for w1 in weight_samples:
            for w2 in weight_samples:
                lhs = action(
                    action(xv, {weight_field: np.asarray([w1])}),
                    {weight_field: np.asarray([w2])},
                )
                rhs = action(xv, {weight_field: np.asarray([w1 + w2])})
                if _tup(lhs) != _tup(rhs):
                    raise MonoidLawError(
                        f"action law failed on x={x}, w1={w1}, w2={w2}: "
                        f"{_tup(lhs)} != {_tup(rhs)}"
                    )
