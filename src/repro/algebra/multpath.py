"""The multpath monoid and the Bellman-Ford action (§4.1).

A *multpath* ``x = (x.w, x.m)`` models a weighted path with a multiplicity:
``x.w`` is the path weight and ``x.m`` the number of distinct paths attaining
that weight.  The monoid operator ``⊕`` keeps the lighter multpath and sums
multiplicities on weight ties:

    x ⊕ y = x                     if x.w < y.w
          = y                     if x.w > y.w
          = (x.w, x.m + y.m)      if x.w = y.w

The identity (and the implicit value of unstored sparse entries) is
``(∞, 0)`` — "no path".

Multiplicities are stored as float64: shortest-path counts grow
exponentially with graph size and would overflow int64 on graphs MFBC is
meant for; float64 matches what production BC codes (including CombBLAS) do.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.fields import FieldArray
from repro.algebra.monoid import MinWeightTieSumMonoid

__all__ = ["MultpathMonoid", "MULTPATH", "bellman_ford_action"]


class MultpathMonoid(MinWeightTieSumMonoid):
    """``(M, ⊕)`` with ``M = W × N``: min-weight selection, tie-sum of counts."""

    def __init__(self) -> None:
        super().__init__(
            field_spec=[("w", np.float64), ("m", np.float64)],
            identity={"w": np.inf, "m": 0.0},
            weight_field="w",
            select="min",
        )

    def make(self, w, m) -> FieldArray:
        """Build a multpath field array from weight/multiplicity columns."""
        return {
            "w": np.asarray(w, dtype=np.float64),
            "m": np.asarray(m, dtype=np.float64),
        }


#: Module-level singleton; the monoid is stateless.
MULTPATH = MultpathMonoid()


def bellman_ford_action(a: FieldArray, b: FieldArray) -> FieldArray:
    """The Bellman-Ford action ``f : M × W → M`` (§4.1.2).

    ``f((w, m), e) = (w + e, m)`` — extend every path in the frontier entry
    by one edge of weight ``e``; the number of such extended paths is
    unchanged.  This is an action of the monoid ``(W, +)`` on the set ``M``.

    ``a`` holds multpath columns (``w``, ``m``); ``b`` holds the edge-weight
    column (``w``).
    """
    return {"w": a["w"] + b["w"], "m": a["m"]}
