"""Cost-model-driven algorithm selection (CTF's mapping search, §6.2).

For every product, :class:`AutoPolicy` enumerates the full §5.2 space —
three 1D variants, three 2D variants over every ``pr × pc`` factorization,
nine 3D variants over every ``p1 × p2 × p3`` factorization — evaluates the
closed-form α-β model with the operands' *actual* nonzero counts (output
nonzeros estimated by the uniform-sparsity model), filters by the machine's
memory budget, and picks the cheapest plan.

Two pinned policies reproduce the paper's named configurations:

* :class:`PinnedPolicy` — CA-MFBC (§6): the fixed Theorem-5.1 grid
  ``√(p/c) × √(p/c) × c`` with the adjacency matrix replicated;
* :class:`Square2DPolicy` — the CombBLAS restriction: square 2D process
  grids only (the reason the paper benchmarks powers of four).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.machine.grid import factorizations
from repro.machine.machine import Machine, MemoryLimitExceeded
from repro.obs import api as obs
from repro.spgemm.costmodel import estimate_nnz_c, estimate_ops, model_plan
from repro.spgemm.plan import Plan

__all__ = [
    "SelectionPolicy",
    "AutoPolicy",
    "PinnedPolicy",
    "Square2DPolicy",
    "select_plan",
    "enumerate_plans",
    "amortized_model_plan",
]


def enumerate_plans(p: int) -> list[Plan]:
    """Every (grid, variant) point of §5.2 for ``p`` ranks."""
    plans: list[Plan] = []
    for x in "ABC":
        plans.append(Plan(p, 1, 1, x, "AB"))
    for pr, pc in factorizations(p, 2):
        if pr == 1 or pc == 1:
            # 1 × q and q × 1 "2D" grids degenerate to the 1D variants
            # already enumerated, with worse step counts.
            continue
        for yz in ("AB", "AC", "BC"):
            plans.append(Plan(1, pr, pc, "A", yz))
    for p1, p2, p3 in factorizations(p, 3):
        if p1 == 1 or p2 * p3 == 1:
            continue
        for x in "ABC":
            for yz in ("AB", "AC", "BC"):
                plans.append(Plan(p1, p2, p3, x, yz))
    return plans


def amortized_model_plan(
    plan: Plan, m, k, n, nnz_a, nnz_b, amortized: frozenset[str], **kwargs
):
    """Model cost with the replication of loop-invariant operands discounted.

    MFBC replicates the adjacency matrix once and reuses it across all
    ``O(d · n/nb)`` products (the amortization in Theorem 5.1's proof); the
    selector must see that discount or it would never choose replication.
    Extra ``kwargs`` (``nnz_c``, ``ops``) pass through to
    :func:`~repro.spgemm.costmodel.model_plan`.
    """
    est = model_plan(plan, m, k, n, nnz_a, nnz_b, **kwargs)
    if plan.kind == "3d" and plan.x in amortized:
        nnz = {"A": nnz_a, "B": nnz_b}.get(plan.x)
        if nnz is not None:
            lg = math.ceil(math.log2(plan.p1)) if plan.p1 > 1 else 0
            est = type(est)(
                msgs=est.msgs - 2.0 * lg,
                words=est.words - 2.0 * nnz / (plan.p2 * plan.p3),
                flops=est.flops,
                memory_words=est.memory_words,
            )
    elif plan.kind == "1d" and plan.x in amortized:
        nnz = {"A": nnz_a, "B": nnz_b}.get(plan.x)
        if nnz is not None:
            q = plan.p1 if plan.p1 > 1 else plan.p2 * plan.p3
            lg = math.ceil(math.log2(q)) if q > 1 else 0
            est = type(est)(
                msgs=est.msgs - 2.0 * lg,
                words=est.words - 2.0 * nnz,
                flops=est.flops,
                memory_words=est.memory_words,
            )
    return est


class SelectionPolicy:
    """Base policy interface."""

    def select(
        self,
        machine: Machine,
        m: int,
        k: int,
        n: int,
        nnz_a: int,
        nnz_b: int,
        amortized: frozenset[str] = frozenset(),
    ) -> Plan:
        raise NotImplementedError

    # -- elasticity hooks ----------------------------------------------------

    def feasible_p(self, p: int) -> bool:
        """Can this policy produce a plan for a ``p``-rank machine?

        Elastic recovery asks this while picking the nearest feasible
        survivor grid (:func:`~repro.machine.grid.nearest_feasible_p`).
        The default — any positive ``p`` — matches :class:`AutoPolicy`,
        which enumerates grids for arbitrary rank counts.
        """
        return p >= 1

    def rescale(self, p: int) -> "SelectionPolicy":
        """The policy to use after an elastic shrink to ``p`` ranks.

        Stateless policies return themselves (they re-run their search at
        the new ``p`` — the selector cost model re-runs per product, so the
        optimal variant may legitimately change at ``p'``); pinned policies
        must re-pin.
        """
        return self


@dataclass
class AutoPolicy(SelectionPolicy):
    """Full model-driven search over grids × variants (CTF behaviour)."""

    #: record of (plan, modeled time) choices, newest last — for diagnostics.
    history: list[tuple[Plan, float]] = field(default_factory=list)

    def select(self, machine, m, k, n, nnz_a, nnz_b, amortized=frozenset()):
        with obs.span("select", cat="selector") as sp:
            cost = machine.cost
            best: Plan | None = None
            best_time = math.inf
            considered = 0
            feasible = 0
            ops = estimate_ops(m, k, n, nnz_a, nnz_b)
            nnz_c = estimate_nnz_c(m, k, n, nnz_a, nnz_b)
            for plan in enumerate_plans(machine.p):
                considered += 1
                est = amortized_model_plan(plan, m, k, n, nnz_a, nnz_b, amortized)
                if (
                    machine.memory_words is not None
                    and est.memory_words > machine.memory_words
                ):
                    continue
                feasible += 1
                t = est.time(cost.alpha, cost.beta, cost.compute_rate)
                if t < best_time - 1e-18 or (
                    abs(t - best_time) <= 1e-18 and best is not None and plan.p1 < best.p1
                ):
                    best, best_time = plan, t
            if best is None:
                raise MemoryLimitExceeded(
                    f"no SpGEMM plan fits the per-rank memory budget "
                    f"{machine.memory_words} words for nnz(A)={nnz_a}, nnz(B)={nnz_b}"
                )
            _ = (ops, nnz_c)
            self.history.append((best, best_time))
            if obs.enabled():
                sp.set(
                    candidates=considered,
                    feasible=feasible,
                    chosen=best.describe(),
                    modeled_seconds=best_time,
                )
                obs.count("selector.selections", 1.0, chosen=best.describe())
        return best


@dataclass
class PinnedPolicy(SelectionPolicy):
    """Always run one fixed plan (CA-MFBC's Theorem-5.1 configuration).

    ``ca_c`` records the Theorem-5.1 replication factor when the policy was
    built by :meth:`ca_mfbc`; it is what lets the policy re-pin itself on a
    shrunken machine (an arbitrary hand-pinned plan cannot).
    """

    plan: Plan
    ca_c: int | None = None

    @classmethod
    def ca_mfbc(cls, p: int, c: int = 1) -> "PinnedPolicy":
        """The communication-avoiding grid of Theorem 5.1.

        ``p1 = p2 = √(p/c)``, ``p3 = c``; the adjacency matrix (our second
        operand) is replicated over the ``p3 = c`` layers via the 1D variant
        and the 2D part broadcasts the frontier and reduces the output.
        """
        if c < 1 or p % c != 0:
            raise ValueError(f"replication factor c={c} must divide p={p}")
        s = math.isqrt(p // c)
        if s * s != p // c:
            raise ValueError(f"p/c = {p // c} must be a perfect square")
        if c == 1:
            return cls(Plan(1, s, s, "A", "AC"), ca_c=c)
        return cls(Plan(c, s, s, "B", "AC"), ca_c=c)

    def select(self, machine, m, k, n, nnz_a, nnz_b, amortized=frozenset()):
        if self.plan.p != machine.p:
            raise ValueError(
                f"pinned plan covers {self.plan.p} ranks, machine has {machine.p}"
            )
        return self.plan

    def feasible_p(self, p: int) -> bool:
        if self.ca_c is not None:
            c = self.ca_c
            return p >= c and p % c == 0 and math.isqrt(p // c) ** 2 == p // c
        return p == self.plan.p

    def rescale(self, p: int) -> "PinnedPolicy":
        if p == self.plan.p:
            return self
        if self.ca_c is None:
            raise ValueError(
                f"pinned plan covers {self.plan.p} ranks and cannot be "
                f"rescaled to p={p}"
            )
        return type(self).ca_mfbc(p, self.ca_c)


@dataclass
class Square2DPolicy(SelectionPolicy):
    """CombBLAS's restriction: a square 2D grid running plain SUMMA (AB)."""

    def select(self, machine, m, k, n, nnz_a, nnz_b, amortized=frozenset()):
        s = math.isqrt(machine.p)
        if s * s != machine.p:
            raise ValueError(
                f"CombBLAS requires a square process grid; p={machine.p} "
                "is not a perfect square"
            )
        return Plan(1, s, s, "A", "AB")

    def feasible_p(self, p: int) -> bool:
        return p >= 1 and math.isqrt(p) ** 2 == p


def select_plan(
    policy: SelectionPolicy,
    machine: Machine,
    m: int,
    k: int,
    n: int,
    nnz_a: int,
    nnz_b: int,
    amortized: frozenset[str] = frozenset(),
) -> Plan:
    """Convenience dispatcher."""
    return policy.select(machine, m, k, n, nnz_a, nnz_b, amortized)
