"""Execution plans for distributed SpGEMM.

A :class:`Plan` names one point in the paper's algorithm space: a processor
grid factorization ``p1 × p2 × p3`` plus the variant pair ``(X, YZ)``:

* ``p1 = p`` (2D/3D dims 1) with ``X`` alone → the three **1D** algorithms
  (§5.2.1): variant ``A`` replicates A, ``B`` replicates B, ``C`` reduces C;
* ``p1 = 1`` → the three **2D** algorithms (§5.2.2): ``AB`` broadcasts both
  operands (SUMMA), ``AC``/``BC`` broadcast one operand and reduce C;
* otherwise → the nine **3D** nestings (§5.2.3): the 1D variant ``X``
  applied over ``p1`` wrapping the 2D variant ``YZ`` on each ``p2 × p3``
  layer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Plan"]

_VALID_X = ("A", "B", "C")
_VALID_YZ = ("AB", "AC", "BC")


@dataclass(frozen=True)
class Plan:
    """One (grid, variant) choice."""

    p1: int
    p2: int
    p3: int
    x: str  # 1D variant over p1 ("A", "B", or "C"); ignored when p1 == 1
    yz: str  # 2D variant on p2 × p3 ("AB", "AC", "BC"); ignored when p2·p3 == 1

    def __post_init__(self) -> None:
        if min(self.p1, self.p2, self.p3) < 1:
            raise ValueError(f"grid dims must be positive: {self}")
        if self.x not in _VALID_X:
            raise ValueError(f"x must be one of {_VALID_X}, got {self.x!r}")
        if self.yz not in _VALID_YZ:
            raise ValueError(f"yz must be one of {_VALID_YZ}, got {self.yz!r}")

    @property
    def p(self) -> int:
        return self.p1 * self.p2 * self.p3

    @property
    def kind(self) -> str:
        """"1d", "2d", or "3d" according to the degenerate dimensions."""
        if self.p1 == 1:
            return "2d" if self.p2 * self.p3 > 1 else "1d"
        if self.p2 * self.p3 == 1:
            return "1d"
        return "3d"

    def describe(self) -> str:
        if self.kind == "1d":
            q = self.p1 if self.p1 > 1 else self.p2 * self.p3
            return f"1D-{self.x}(p={q})" if self.p1 > 1 else f"2D-{self.yz}(1x{q})"
        if self.kind == "2d":
            return f"2D-{self.yz}({self.p2}x{self.p3})"
        return f"3D-{self.x},{self.yz}({self.p1}x{self.p2}x{self.p3})"
