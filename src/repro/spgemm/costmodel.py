"""Closed-form α-β cost models for the SpGEMM algorithm space (§5.2).

These are the expressions the paper derives, with the same structure CTF's
mapping search evaluates: per-variant message counts and word volumes as
functions of the operand/output nonzero counts and the grid factorization.
The selector uses them a priori (with model-estimated ``nnz(C)``); the
theory benches print them directly.

All functions return a :class:`CostEstimate` with separate latency-message
and bandwidth-word tallies so callers can apply any machine's α and β.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "CostEstimate",
    "estimate_ops",
    "estimate_nnz_c",
    "model_1d",
    "model_2d",
    "model_3d",
    "model_plan",
]


@dataclass(frozen=True)
class CostEstimate:
    """Messages, words, local flops, and per-rank memory words of a plan."""

    msgs: float
    words: float
    flops: float
    memory_words: float

    def time(self, alpha: float, beta: float, compute_rate: float) -> float:
        """Modeled execution time under given machine constants."""
        return self.msgs * alpha + self.words * beta + self.flops / compute_rate


def estimate_ops(m: int, k: int, n: int, nnz_a: int, nnz_b: int) -> float:
    """``ops(A, B) ≈ nnz(A)·nnz(B)/k`` — the uniform-sparsity estimate (§5.2)."""
    if k == 0:
        return 0.0
    return nnz_a * (nnz_b / k)


def estimate_nnz_c(m: int, k: int, n: int, nnz_a: int, nnz_b: int) -> float:
    """``nnz(C) ≈ min(m·n, ops(A, B))`` (§5.2)."""
    return min(float(m) * float(n), estimate_ops(m, k, n, nnz_a, nnz_b))


def _lg(q: float) -> float:
    return math.ceil(math.log2(q)) if q > 1 else 0.0


def model_1d(
    variant: str, p: int, nnz_a: float, nnz_b: float, nnz_c: float, ops: float
) -> CostEstimate:
    """The 1D algorithms (§5.2.1): ``W_X = O(α·log p + β·nnz(X))``.

    Variant A broadcasts A (everyone ends up holding all of A), B broadcasts
    B, and C forms full partial outputs reduced with a sparse reduction.
    """
    nnz = {"A": nnz_a, "B": nnz_b, "C": nnz_c}[variant]
    # bcast/reduce-class collective: weight-2 constants as in §7.4
    msgs = 2.0 * _lg(p)
    words = 2.0 * nnz
    # replicated operand (or full partial output) is held entirely per rank
    others = {"A": nnz_b + nnz_c, "B": nnz_a + nnz_c, "C": nnz_a + nnz_b}[variant]
    memory = nnz + others / p
    return CostEstimate(msgs, words, ops / p, memory)


def model_2d(
    variant: str,
    pr: int,
    pc: int,
    nnz_a: float,
    nnz_b: float,
    nnz_c: float,
    ops: float,
) -> CostEstimate:
    """The 2D algorithms (§5.2.2).

    ``W_YZ = O(α·max(pr,pc)·log p + β·(nnz(Y)/pr + nnz(Z)/pc))`` — CTF runs
    ``lcm(pr, pc)`` broadcast/reduction steps and prefers grids where
    ``lcm ≈ max``.
    """
    p = pr * pc
    steps = math.lcm(pr, pc)
    nnz = {"A": nnz_a, "B": nnz_b, "C": nnz_c}
    y, z = variant[0], variant[1]
    msgs = 2.0 * steps * _lg(p)
    words = 2.0 * (nnz[y] / pr + nnz[z] / pc)
    memory = (nnz_a + nnz_b + nnz_c) / p + nnz[y] / pr + nnz[z] / pc
    return CostEstimate(msgs, words, ops / p, memory)


def model_3d(
    x: str,
    yz: str,
    p1: int,
    p2: int,
    p3: int,
    nnz_a: float,
    nnz_b: float,
    nnz_c: float,
    ops: float,
) -> CostEstimate:
    """The nine 3D nestings (§5.2.3).

    ``W_{X,YZ} = W_X(X[p2,p3]) + W_YZ(...)`` where the 1D variant handles
    blocks of X from a ``p2 × p3`` distribution and the 2D algorithm sees
    the other matrices shrunk by ``p1`` in the dimension the 1D split cuts.
    Memory grows by the replication factor: ``nnz(X)·p1/p`` per rank.
    """
    p = p1 * p2 * p3
    nnz = {"A": nnz_a, "B": nnz_b, "C": nnz_c}
    # -- 1D part over p1 on X blocks from the p2 × p3 layer distribution.
    msgs = 2.0 * _lg(p1)
    words = 2.0 * nnz[x] / (p2 * p3)

    # -- 2D part per layer; matrices ≠ X are split by p1 along one dimension.
    def layer_nnz(name: str) -> float:
        return nnz[name] if name == x else nnz[name] / p1

    steps = math.lcm(p2, p3)
    y, z = yz[0], yz[1]
    msgs += 2.0 * steps * _lg(max(p2 * p3, 1))
    words += 2.0 * (layer_nnz(y) / p2 + layer_nnz(z) / p3)
    memory = (nnz_a + nnz_b + nnz_c) / p + nnz[x] * p1 / p
    memory += layer_nnz(y) / p2 + layer_nnz(z) / p3
    return CostEstimate(msgs, words, ops / p, memory)


def model_plan(
    plan,
    m: int,
    k: int,
    n: int,
    nnz_a: float,
    nnz_b: float,
    nnz_c: float | None = None,
    ops: float | None = None,
) -> CostEstimate:
    """Evaluate any :class:`~repro.spgemm.plan.Plan` under the §5.2 models."""
    if ops is None:
        ops = estimate_ops(m, k, n, int(nnz_a), int(nnz_b))
    if nnz_c is None:
        nnz_c = estimate_nnz_c(m, k, n, int(nnz_a), int(nnz_b))
    kind = plan.kind
    if kind == "1d":
        q = plan.p1 if plan.p1 > 1 else plan.p2 * plan.p3
        return model_1d(plan.x, max(q, 1), nnz_a, nnz_b, nnz_c, ops)
    if kind == "2d":
        return model_2d(plan.yz, plan.p2, plan.p3, nnz_a, nnz_b, nnz_c, ops)
    return model_3d(
        plan.x, plan.yz, plan.p1, plan.p2, plan.p3, nnz_a, nnz_b, nnz_c, ops
    )
