"""Communication-efficient distributed sparse matrix multiplication (§5.2).

The paper's standalone theoretical contribution: a family of 1D, 2D, and 3D
sparse matmul algorithms whose communication cost adapts to the *imbalance*
of nonzeros between operands, searched automatically by a cost-model-driven
selector (CTF's mapping search, §6.2).

* :mod:`repro.spgemm.costmodel` — the closed-form α-β costs ``W_X`` (1D),
  ``W_YZ`` (2D), ``W_{X,YZ}`` (3D) and the uniform-sparsity output
  estimators ``ops(A,B) ≈ nnz(A)·nnz(B)/k``, ``nnz(C) ≈ min(mn, ops)``;
* :mod:`repro.spgemm.variants` — executable algorithms on the simulated
  machine: the three 1D variants, the three 2D SUMMA-style variants, and
  the nine 3D nestings, all moving real blocks and charging real sizes;
* :mod:`repro.spgemm.selector` — enumerates grids × variants, evaluates the
  model, and returns the cheapest feasible plan; plus the pinned policies
  (CA-MFBC's Theorem-5.1 grid, CombBLAS's square-2D restriction).
"""

from repro.spgemm.costmodel import (
    CostEstimate,
    estimate_nnz_c,
    estimate_ops,
    model_1d,
    model_2d,
    model_3d,
)
from repro.spgemm.plan import Plan
from repro.spgemm.selector import (
    AutoPolicy,
    PinnedPolicy,
    Square2DPolicy,
    select_plan,
)
from repro.spgemm.variants import execute_plan

__all__ = [
    "CostEstimate",
    "estimate_ops",
    "estimate_nnz_c",
    "model_1d",
    "model_2d",
    "model_3d",
    "Plan",
    "select_plan",
    "AutoPolicy",
    "PinnedPolicy",
    "Square2DPolicy",
    "execute_plan",
]
