"""Executable distributed SpGEMM algorithms on the simulated machine.

Every variant of §5.2 is implemented with *real block movement* — operands
are redistributed into the variant's native layouts, panels/pieces are
extracted, local products run through the vectorized kernel, and outputs are
reassembled — while every communication phase charges the machine's ledger
with the measured payload sizes through the same collective constants the
analysis uses (broadcast/reduce weight 2, scatter/all-to-all weight 1).

Layout conventions (C = A •⟨⊕,f⟩ B, A is m×k, B is k×n):

* 2D variants run on a ``pr × pc`` rank grid with ``L = lcm(pr, pc)``
  broadcast/reduction steps (CTF's step count):
  - **AB**: A blocked (m~pr, k~pc), B blocked (k~pr, n~pc), C stationary;
    per step the A piece broadcasts along its grid row and the B piece
    along its grid column.
  - **AC**: B stationary (k~pr, n~pc); A lives transposed-blocked
    (m~pc, k~pr) so each piece broadcast runs along a grid row; partial C
    chunks are sparse-reduced along grid columns.
  - **BC**: A stationary (m~pr, k~pc); B lives transposed-blocked
    (k~pc, n~pr); B pieces broadcast along grid columns; partial C chunks
    are sparse-reduced along grid rows.
* 1D variants degenerate: **A**/**B** replicate one operand with a single
  broadcast-class collective and block the others 1-dimensionally; **C**
  forms full-size local partials and sparse-reduces them.
* 3D variants nest: the 1D variant ``X`` runs over ``p1`` layers (replicating
  X or splitting/reducing), each layer running the 2D variant on its
  ``p2 × p3`` sub-grid.  Replication of a loop-invariant operand (MFBC's
  adjacency matrix) is cached and charged once — the amortization the proof
  of Theorem 5.1 relies on.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algebra.matmul import MatMulSpec
from repro.dist.distmat import DistMat, even_splits
from repro.machine.machine import Machine
from repro.obs import api as obs
from repro.sparse.spgemm import spgemm
from repro.sparse.spmatrix import SpMat
from repro.spgemm.plan import Plan

__all__ = ["execute_plan"]


def execute_plan(
    plan: Plan,
    a: DistMat,
    b: DistMat,
    spec: MatMulSpec,
    home_ranks2d: np.ndarray,
    *,
    mask: SpMat | None = None,
    mask_complement: bool = False,
    replication_cache: dict | None = None,
) -> tuple[DistMat, int]:
    """Run ``C = A •⟨⊕,f⟩ B`` under ``plan``; return C on the home grid.

    ``home_ranks2d`` is the machine-wide 2D rank grid that inputs live on
    and the output is returned on (the engine's resting layout).

    ``mask`` is an optional node-local structural output mask with C's
    *global* shape (``mask_complement`` inverts its support).  Each variant
    slices the exact sub-mask covering every local product's output frame,
    so masked results — and masked ``ops`` totals, because the join pairs
    are partitioned disjointly and each pair's survival is decided by the
    same global mask — are identical across all plans.
    """
    machine = a.machine
    if plan.p != machine.p:
        raise ValueError(f"plan {plan} does not cover machine p={machine.p}")
    if a.ncols != b.nrows:
        raise ValueError(f"inner dimension mismatch: {a.shape} × {b.shape}")
    if mask is not None and mask.shape != (a.nrows, b.ncols):
        raise ValueError(
            f"mask shape {mask.shape} != output shape {(a.nrows, b.ncols)}"
        )
    kind = plan.kind
    if kind == "1d":
        c, ops = _exec_1d(
            plan.x, machine, a, b, spec, mask, mask_complement, replication_cache
        )
    elif kind == "2d":
        ranks2d = np.arange(machine.p).reshape(plan.p2, plan.p3)
        c, ops = _exec_2d(plan.yz, ranks2d, machine, a, b, spec, mask, mask_complement)
    else:
        ranks3d = np.arange(machine.p).reshape(plan.p1, plan.p2, plan.p3)
        c, ops = _exec_3d(
            plan.x, plan.yz, ranks3d, machine, a, b, spec,
            mask, mask_complement, replication_cache,
        )
    if not (
        np.array_equal(c.ranks2d, home_ranks2d)
        and np.array_equal(c.row_splits, even_splits(c.nrows, home_ranks2d.shape[0]))
        and np.array_equal(c.col_splits, even_splits(c.ncols, home_ranks2d.shape[1]))
    ):
        c = c.redistribute(home_ranks2d)
    return c, ops


# ---------------------------------------------------------------------------
# local helpers
# ---------------------------------------------------------------------------


def _local_mul(
    machine: Machine,
    rank: int,
    x: SpMat,
    y: SpMat,
    spec,
    *,
    mask: SpMat | None = None,
    mask_complement: bool = False,
) -> tuple[SpMat, int]:
    res = spgemm(
        x, y, spec, mask=mask, mask_complement=mask_complement,
        kernel=machine.executor.kernel_mode,
    )
    machine.charge_compute([rank], float(res.ops))
    return res.matrix, res.ops


def _local_mul_batch(
    machine: Machine,
    tasks: list[tuple[int, SpMat, SpMat]],
    spec,
    *,
    masks: list[SpMat | None] | None = None,
    mask_complement: bool = False,
) -> list[tuple[SpMat, int]]:
    """Run independent local products ``[(rank, x, y), ...]``.

    On real hardware the per-rank kernels between two collectives run
    concurrently; here the machine's executor fans them across host cores
    (when the work amortizes the dispatch overhead).  Results come back in
    task order and ledger charges are applied on the simulation thread in
    that same order, so matrices and ledger totals are bit-identical to
    calling :func:`_local_mul` in a loop.  ``masks[i]`` is the structural
    output mask for task ``i`` (already sliced to the task's output frame).
    """
    results = machine.executor.run_spgemm(
        [(x, y) for _, x, y in tasks],
        spec,
        masks=masks,
        mask_complement=mask_complement,
        ranks=[rank for rank, _, _ in tasks],
    )
    out = []
    for (rank, _, _), res in zip(tasks, results):
        machine.charge_compute([rank], float(res.ops))
        out.append((res.matrix, res.ops))
    return out


def _embed(piece: SpMat, nrows: int, ncols: int, roff: int, coff: int) -> SpMat:
    """Place ``piece`` into an ``nrows × ncols`` frame at offset (roff, coff)."""
    return SpMat(
        nrows,
        ncols,
        piece.rows + roff,
        piece.cols + coff,
        piece.vals,
        piece.monoid,
        canonical=True,
    )


def _replicate_cached(
    cache: dict | None,
    key,
    build,
):
    """Fetch a replicated operand from the cache or build-and-charge it."""
    if cache is not None and key in cache:
        if obs.enabled():
            obs.count("spgemm.replication_cache", 1.0, outcome="hit")
            obs.set_attr(replication_cache="hit")
        return cache[key], True
    value = build()
    if cache is not None:
        cache[key] = value
        if obs.enabled():
            obs.count("spgemm.replication_cache", 1.0, outcome="miss")
            obs.set_attr(replication_cache="miss")
    return value, False


# ---------------------------------------------------------------------------
# 1D algorithms (§5.2.1)
# ---------------------------------------------------------------------------


def _exec_1d(
    x: str,
    machine: Machine,
    a: DistMat,
    b: DistMat,
    spec,
    mask: SpMat | None,
    mask_complement: bool,
    cache: dict | None,
) -> tuple[DistMat, int]:
    p = machine.p
    all_ranks = np.arange(p)
    row1 = all_ranks.reshape(1, p)
    col1 = all_ranks.reshape(p, 1)
    monoid = spec.monoid
    m, k, n = a.nrows, a.ncols, b.ncols
    total_ops = 0

    if x == "A":
        # replicate A (broadcast), block B and C by columns.
        def build():
            full = a.gather(charge=False)
            machine.charge_collective(
                all_ranks, full.words(), weight=2.0, category="replicate"
            )
            return full

        a_full, _ = _replicate_cached(cache, ("1dA", id(a)), build)
        b1 = b.redistribute(row1)
        # C is column-blocked like B: each rank's output frame is a column
        # stripe, so it sees the matching column slice of the mask.
        masks = None
        if mask is not None:
            masks = [
                mask.block(0, m, int(b1.col_splits[j]), int(b1.col_splits[j + 1]))
                for j in range(p)
            ]
        outs = _local_mul_batch(
            machine,
            [(j, a_full, b1.blocks[0][j]) for j in range(p)],
            spec,
            masks=masks,
            mask_complement=mask_complement,
        )
        c_blocks = []
        for blk, ops in outs:
            total_ops += ops
            c_blocks.append(blk)
        c = DistMat(
            machine, row1, even_splits(m, 1), b1.col_splits, [c_blocks], monoid
        )
        return c, total_ops

    if x == "B":
        # replicate B, block A and C by rows.
        def build():
            full = b.gather(charge=False)
            machine.charge_collective(
                all_ranks, full.words(), weight=2.0, category="replicate"
            )
            return full

        b_full, _ = _replicate_cached(cache, ("1dB", id(b)), build)
        a1 = a.redistribute(col1)
        # C is row-blocked like A: each rank sees its row stripe of the mask.
        masks = None
        if mask is not None:
            masks = [
                mask.block(int(a1.row_splits[i]), int(a1.row_splits[i + 1]), 0, n)
                for i in range(p)
            ]
        outs = _local_mul_batch(
            machine,
            [(i, a1.blocks[i][0], b_full) for i in range(p)],
            spec,
            masks=masks,
            mask_complement=mask_complement,
        )
        c_blocks = []
        for blk, ops in outs:
            total_ops += ops
            c_blocks.append([blk])
        c = DistMat(
            machine, col1, a1.row_splits, even_splits(n, 1), c_blocks, monoid
        )
        return c, total_ops

    # x == "C": block A by columns and B by rows; sparse-reduce full partials.
    a1 = a.redistribute(row1)  # (m × k) split along k
    b1 = b.redistribute(col1)  # (k × n) split along k
    # every rank forms a full-shape partial, so every rank masks with the
    # full mask; the masked ops total is still partition-invariant because
    # the k-slices partition the join pairs disjointly.
    outs = _local_mul_batch(
        machine,
        [(r, a1.blocks[0][r], b1.blocks[r][0]) for r in range(p)],
        spec,
        masks=None if mask is None else [mask] * p,
        mask_complement=mask_complement,
    )
    partial = None
    for blk, ops in outs:
        total_ops += ops
        partial = blk if partial is None else partial.combine(blk)
    if partial is None:
        partial = SpMat.empty(m, n, monoid)
    machine.charge_collective(
        all_ranks, partial.words(), weight=2.0, category="reduce"
    )
    home = np.arange(p).reshape(1, p) if p > 1 else np.zeros((1, 1), dtype=np.int64)
    c = DistMat.distribute(partial, machine, home, charge=True)
    return c, total_ops


# ---------------------------------------------------------------------------
# 2D algorithms (§5.2.2)
# ---------------------------------------------------------------------------


def _chunk_of(splits: np.ndarray, t_lo: int, t_hi: int, block: int) -> tuple[int, int]:
    """Local [lo, hi) range of global chunk [t_lo, t_hi) inside ``block``."""
    base = int(splits[block])
    return t_lo - base, t_hi - base


def _exec_2d(
    yz: str,
    ranks2d: np.ndarray,
    machine: Machine,
    a: DistMat,
    b: DistMat,
    spec,
    mask: SpMat | None = None,
    mask_complement: bool = False,
) -> tuple[DistMat, int]:
    pr, pc = ranks2d.shape
    m, k, n = a.nrows, a.ncols, b.ncols
    monoid = spec.monoid
    lcm = math.lcm(pr, pc)
    total_ops = 0

    if yz == "AB":
        a_n = a.redistribute(ranks2d, even_splits(m, pr), even_splits(k, pc))
        b_n = b.redistribute(ranks2d, even_splits(k, pr), even_splits(n, pc))
        ks = even_splits(k, lcm)
        c_blocks = [
            [SpMat.empty(
                int(a_n.row_splits[i + 1] - a_n.row_splits[i]),
                int(b_n.col_splits[j + 1] - b_n.col_splits[j]),
                monoid,
            ) for j in range(pc)]
            for i in range(pr)
        ]
        # every step's (i, j) product lands on C's stationary (i, j) block,
        # so the per-cell mask slices are loop-invariant: cut them once.
        mask_cells = None
        if mask is not None:
            mask_cells = [
                [
                    mask.block(
                        int(a_n.row_splits[i]),
                        int(a_n.row_splits[i + 1]),
                        int(b_n.col_splits[j]),
                        int(b_n.col_splits[j + 1]),
                    )
                    for j in range(pc)
                ]
                for i in range(pr)
            ]
        for t in range(lcm):
            t_lo, t_hi = int(ks[t]), int(ks[t + 1])
            ja = t // (lcm // pc)
            ib = t // (lcm // pr)
            # A pieces broadcast along grid rows.
            a_pieces = []
            for i in range(pr):
                lo, hi = _chunk_of(a_n.col_splits, t_lo, t_hi, ja)
                piece = a_n.blocks[i][ja].block(0, a_n.blocks[i][ja].nrows, lo, hi)
                a_pieces.append(piece)
                if piece.nnz and pc > 1:
                    machine.charge_collective(
                        ranks2d[i, :], piece.words(), weight=2.0, category="bcast"
                    )
            # B pieces broadcast along grid columns.
            b_pieces = []
            for j in range(pc):
                lo, hi = _chunk_of(b_n.row_splits, t_lo, t_hi, ib)
                piece = b_n.blocks[ib][j].block(lo, hi, 0, b_n.blocks[ib][j].ncols)
                b_pieces.append(piece)
                if piece.nnz and pr > 1:
                    machine.charge_collective(
                        ranks2d[:, j], piece.words(), weight=2.0, category="bcast"
                    )
            # per-step local products are independent across (i, j): batch
            # them through the executor, merge in serial iteration order
            cells = [
                (i, j)
                for i in range(pr)
                if a_pieces[i].nnz
                for j in range(pc)
                if b_pieces[j].nnz
            ]
            outs = _local_mul_batch(
                machine,
                [(int(ranks2d[i, j]), a_pieces[i], b_pieces[j]) for i, j in cells],
                spec,
                masks=None if mask_cells is None
                else [mask_cells[i][j] for i, j in cells],
                mask_complement=mask_complement,
            )
            for (i, j), (prod, ops) in zip(cells, outs):
                total_ops += ops
                if prod.nnz:
                    c_blocks[i][j] = c_blocks[i][j].combine(prod)
        c = DistMat(machine, ranks2d, a_n.row_splits, b_n.col_splits, c_blocks, monoid)
        return c, total_ops

    if yz == "BC":
        # A stationary; B pieces broadcast along grid columns; C chunks
        # sparse-reduced along grid rows.
        a_n = a.redistribute(ranks2d, even_splits(m, pr), even_splits(k, pc))
        b_n = b.redistribute(ranks2d.T, even_splits(k, pc), even_splits(n, pr))
        ns = even_splits(n, lcm)
        cs = even_splits(n, pc)
        c_blocks = [
            [SpMat.empty(
                int(a_n.row_splits[i + 1] - a_n.row_splits[i]),
                int(cs[j + 1] - cs[j]),
                monoid,
            ) for j in range(pc)]
            for i in range(pr)
        ]
        for t in range(lcm):
            t_lo, t_hi = int(ns[t]), int(ns[t + 1])
            tb = t // (lcm // pr)
            jc = t // (lcm // pc)
            b_pieces = []
            for j in range(pc):
                lo, hi = _chunk_of(b_n.col_splits, t_lo, t_hi, tb)
                piece = b_n.blocks[j][tb].block(0, b_n.blocks[j][tb].nrows, lo, hi)
                b_pieces.append(piece)
                if piece.nnz and pr > 1:
                    machine.charge_collective(
                        ranks2d[:, j], piece.words(), weight=2.0, category="bcast"
                    )
            # products are independent across the whole (i, j) step; grid
            # rows touch disjoint rank sets, so batching them ahead of the
            # per-row reductions leaves the ledger bit-identical
            cells = [
                (i, j)
                for i in range(pr)
                for j in range(pc)
                if b_pieces[j].nnz and a_n.blocks[i][j].nnz
            ]
            # each product covers C's (row stripe i) × (column chunk t):
            # slice that frame's sub-mask, shared by all j in grid row i.
            mask_rows = None
            if mask is not None:
                mask_rows = [
                    mask.block(
                        int(a_n.row_splits[i]),
                        int(a_n.row_splits[i + 1]),
                        t_lo,
                        t_hi,
                    )
                    for i in range(pr)
                ]
            outs = dict(
                zip(
                    cells,
                    _local_mul_batch(
                        machine,
                        [
                            (int(ranks2d[i, j]), a_n.blocks[i][j], b_pieces[j])
                            for i, j in cells
                        ],
                        spec,
                        masks=None if mask_rows is None
                        else [mask_rows[i] for i, j in cells],
                        mask_complement=mask_complement,
                    ),
                )
            )
            for i in range(pr):
                partial = None
                for j in range(pc):
                    if (i, j) not in outs:
                        continue
                    prod, ops = outs[(i, j)]
                    total_ops += ops
                    partial = prod if partial is None else partial.combine(prod)
                if partial is not None and partial.nnz:
                    if pc > 1:
                        machine.charge_collective(
                            ranks2d[i, :],
                            partial.words(),
                            weight=2.0,
                            category="reduce",
                        )
                    placed = _embed(
                        partial,
                        c_blocks[i][jc].nrows,
                        c_blocks[i][jc].ncols,
                        0,
                        t_lo - int(cs[jc]),
                    )
                    c_blocks[i][jc] = c_blocks[i][jc].combine(placed)
        c = DistMat(machine, ranks2d, a_n.row_splits, cs, c_blocks, monoid)
        return c, total_ops

    if yz == "AC":
        # B stationary; A pieces broadcast along grid rows; C chunks
        # sparse-reduced along grid columns.
        b_n = b.redistribute(ranks2d, even_splits(k, pr), even_splits(n, pc))
        a_n = a.redistribute(ranks2d.T, even_splits(m, pc), even_splits(k, pr))
        ms = even_splits(m, lcm)
        rs = even_splits(m, pr)
        c_blocks = [
            [SpMat.empty(
                int(rs[i + 1] - rs[i]),
                int(b_n.col_splits[j + 1] - b_n.col_splits[j]),
                monoid,
            ) for j in range(pc)]
            for i in range(pr)
        ]
        for t in range(lcm):
            t_lo, t_hi = int(ms[t]), int(ms[t + 1])
            ta = t // (lcm // pc)
            ic = t // (lcm // pr)
            a_pieces = []
            for i in range(pr):
                lo, hi = _chunk_of(a_n.row_splits, t_lo, t_hi, ta)
                piece = a_n.blocks[ta][i].block(lo, hi, 0, a_n.blocks[ta][i].ncols)
                a_pieces.append(piece)
                if piece.nnz and pc > 1:
                    machine.charge_collective(
                        ranks2d[i, :], piece.words(), weight=2.0, category="bcast"
                    )
            # mirror of BC: batch the step's products; grid columns touch
            # disjoint rank sets, so the per-column reductions still see a
            # bit-identical ledger
            cells = [
                (j, i)
                for j in range(pc)
                for i in range(pr)
                if a_pieces[i].nnz and b_n.blocks[i][j].nnz
            ]
            # each product covers C's (row chunk t) × (column stripe j):
            # slice that frame's sub-mask, shared by all i in grid column j.
            mask_cols = None
            if mask is not None:
                mask_cols = [
                    mask.block(
                        t_lo,
                        t_hi,
                        int(b_n.col_splits[j]),
                        int(b_n.col_splits[j + 1]),
                    )
                    for j in range(pc)
                ]
            outs = dict(
                zip(
                    cells,
                    _local_mul_batch(
                        machine,
                        [
                            (int(ranks2d[i, j]), a_pieces[i], b_n.blocks[i][j])
                            for j, i in cells
                        ],
                        spec,
                        masks=None if mask_cols is None
                        else [mask_cols[j] for j, i in cells],
                        mask_complement=mask_complement,
                    ),
                )
            )
            for j in range(pc):
                partial = None
                for i in range(pr):
                    if (j, i) not in outs:
                        continue
                    prod, ops = outs[(j, i)]
                    total_ops += ops
                    partial = prod if partial is None else partial.combine(prod)
                if partial is not None and partial.nnz:
                    if pr > 1:
                        machine.charge_collective(
                            ranks2d[:, j],
                            partial.words(),
                            weight=2.0,
                            category="reduce",
                        )
                    placed = _embed(
                        partial,
                        c_blocks[ic][j].nrows,
                        c_blocks[ic][j].ncols,
                        t_lo - int(rs[ic]),
                        0,
                    )
                    c_blocks[ic][j] = c_blocks[ic][j].combine(placed)
        c = DistMat(machine, ranks2d, rs, b_n.col_splits, c_blocks, monoid)
        return c, total_ops

    raise ValueError(f"unknown 2D variant {yz!r}")


# ---------------------------------------------------------------------------
# 3D algorithms (§5.2.3): 1D variant X over p1 nesting 2D variant YZ
# ---------------------------------------------------------------------------


def _layer_home(layer_ranks: np.ndarray, nrows: int, ncols: int):
    pr, pc = layer_ranks.shape
    return even_splits(nrows, pr), even_splits(ncols, pc)


def _exec_3d(
    x: str,
    yz: str,
    ranks3d: np.ndarray,
    machine: Machine,
    a: DistMat,
    b: DistMat,
    spec,
    mask: SpMat | None,
    mask_complement: bool,
    cache: dict | None,
) -> tuple[DistMat, int]:
    p1, p2, p3 = ranks3d.shape
    m, k, n = a.nrows, a.ncols, b.ncols
    monoid = spec.monoid
    layers = [ranks3d[l] for l in range(p1)]
    total_ops = 0

    def replicate(mat: DistMat, tag: str) -> list[DistMat]:
        """One copy of ``mat`` per layer; broadcast charged once per fiber."""

        def build():
            copies = [mat.redistribute(layers[l], charge=(l == 0)) for l in range(p1)]
            # fiber broadcasts: each (i, j) position's block travels to the
            # p1 ranks {ranks3d[:, i, j]} — the W_X(X[p2, p3]) term.
            ref = copies[0]
            for i in range(p2):
                for j in range(p3):
                    w = ref.blocks[i][j].words()
                    if w and p1 > 1:
                        machine.charge_collective(
                            ranks3d[:, i, j], w, weight=2.0, category="replicate"
                        )
            return copies

        copies, _ = _replicate_cached(cache, ("3d" + tag, id(mat), p1, p2, p3), build)
        return copies

    if x == "A":
        a_layers = replicate(a, "A")
        bs = even_splits(n, p1)
        pieces = []
        for l in range(p1):
            b_l = b.extract_col_range(int(bs[l]), int(bs[l + 1])).redistribute(layers[l])
            # layer l owns C's column range [bs[l], bs[l+1]): its sub-mask
            mask_l = (
                None if mask is None
                else mask.block(0, m, int(bs[l]), int(bs[l + 1]))
            )
            c_l, ops = _exec_2d(
                yz, layers[l], machine, a_layers[l], b_l, spec,
                mask_l, mask_complement,
            )
            total_ops += ops
            pieces.append((c_l, 0, int(bs[l])))
        return _reassemble(machine, pieces, m, n, monoid), total_ops

    if x == "B":
        b_layers = replicate(b, "B")
        as_ = even_splits(m, p1)
        pieces = []
        for l in range(p1):
            a_l = a.extract_row_range(int(as_[l]), int(as_[l + 1])).redistribute(layers[l])
            # layer l owns C's row range [as_[l], as_[l+1]): its sub-mask
            mask_l = (
                None if mask is None
                else mask.block(int(as_[l]), int(as_[l + 1]), 0, n)
            )
            c_l, ops = _exec_2d(
                yz, layers[l], machine, a_l, b_layers[l], spec,
                mask_l, mask_complement,
            )
            total_ops += ops
            pieces.append((c_l, int(as_[l]), 0))
        return _reassemble(machine, pieces, m, n, monoid), total_ops

    # x == "C": split the contraction dimension; sparse-reduce layer partials.
    ks = even_splits(k, p1)
    partials = []
    for l in range(p1):
        a_l = a.extract_col_range(int(ks[l]), int(ks[l + 1])).redistribute(layers[l])
        b_l = b.extract_row_range(int(ks[l]), int(ks[l + 1])).redistribute(layers[l])
        # every layer's partial spans all of C: mask with the full mask
        c_l, ops = _exec_2d(
            yz, layers[l], machine, a_l, b_l, spec, mask, mask_complement
        )
        total_ops += ops
        partials.append(c_l)
    # reduce across layers, block position by block position (fiber groups)
    base = partials[0]
    out_blocks = []
    for i in range(p2):
        row = []
        for j in range(p3):
            acc = base.blocks[i][j]
            for l in range(1, p1):
                acc = acc.combine(partials[l].blocks[i][j])
            if acc.nnz and p1 > 1:
                machine.charge_collective(
                    ranks3d[:, i, j], acc.words(), weight=2.0, category="reduce"
                )
            row.append(acc)
        out_blocks.append(row)
    c = DistMat(
        machine, layers[0], base.row_splits, base.col_splits, out_blocks, monoid
    )
    return c, total_ops


def _reassemble(
    machine: Machine,
    pieces: list[tuple[DistMat, int, int]],
    nrows: int,
    ncols: int,
    monoid,
) -> DistMat:
    """Concatenate disjoint layer outputs into one machine-wide matrix.

    Pure reindexing: each layer's blocks keep their owners; the result lives
    on the union grid described by stacked splits.  No data moves, so no
    charge — the caller's final redistribution to the home layout pays the
    real shuffle.
    """
    full_rows: list[np.ndarray] = []
    full_cols: list[np.ndarray] = []
    full_vals = []
    for dm, roff, coff in pieces:
        local = dm.gather(charge=False)
        if local.nnz == 0:
            continue
        full_rows.append(local.rows + roff)
        full_cols.append(local.cols + coff)
        full_vals.append(local.vals)
    if not full_rows:
        full = SpMat.empty(nrows, ncols, monoid)
    else:
        from repro.algebra.fields import concat_fields

        full = SpMat(
            nrows,
            ncols,
            np.concatenate(full_rows),
            np.concatenate(full_cols),
            concat_fields(full_vals),
            monoid,
        )
    p = machine.p
    # provisional machine-wide 1 × p layout; caller redistributes to home
    return DistMat.distribute(
        full, machine, np.arange(p).reshape(1, p), charge=False
    )
