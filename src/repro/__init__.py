"""repro — Maximal Frontier Betweenness Centrality (MFBC).

A production-quality reproduction of *"Scaling Betweenness Centrality using
Communication-Efficient Sparse Matrix Multiplication"* (Solomonik, Besta,
Vella, Hoefler — SC'17): the monoid-based MFBC algorithm, a mini-CTF
distributed sparse-matrix substrate with the full §5.2 SpGEMM algorithm
space and model-driven selection, a simulated α-β distributed machine, and
the paper's baselines (Brandes, CombBLAS-style BC, APSP).

Quickstart
----------
>>> from repro import rmat_graph, betweenness_centrality
>>> g = rmat_graph(scale=10, avg_degree=8, seed=0)
>>> scores = betweenness_centrality(g)

Distributed (simulated) execution:

>>> from repro import Machine, DistributedEngine, mfbc
>>> machine = Machine(p=16)
>>> result = mfbc(g, engine=DistributedEngine(machine))
>>> machine.ledger.snapshot()          # critical-path words/messages/time
"""

from repro.algebra import (
    CENTPATH,
    MAX_MIN,
    MULTPATH,
    REAL_PLUS_TIMES,
    TROPICAL,
    MatMulSpec,
    Monoid,
    Semiring,
    SemiringAction,
    bellman_ford_action,
    brandes_action,
    left_project,
)
from repro.analysis import (
    edge_weak_scaling,
    model_run,
    mteps,
    mteps_per_node,
    strong_scaling,
    vertex_weak_scaling,
)
from repro.baselines import brandes_bc, combblas_bc
from repro.apps import (
    bfs_levels,
    connected_components,
    sssp_distances,
    triangle_count,
)
from repro.check import (
    CheckConfig,
    CheckedEngine,
    CheckError,
    CheckFailure,
    Violation,
    check_distmat,
    check_ledger,
    check_matrix,
    check_spmat,
    maybe_checked,
    resolve_check_config,
)
from repro.core import (
    Engine,
    MFBCResult,
    SequentialEngine,
    adaptive_vertex_bc,
    approximate_bc,
    betweenness_centrality,
    ca_mfbc,
    edge_betweenness_centrality,
    mfbc,
    mfbf,
    mfbr,
)
from repro.dist import DistMat, DistributedEngine
from repro.elastic import (
    ElasticPolicy,
    RecoveryError,
    RecoveryReport,
    resolve_elastic,
)
from repro.faults import (
    CheckpointStore,
    CorruptCheckpoint,
    CorruptPayload,
    DeadlineExceeded,
    FaultError,
    FaultEvent,
    FaultPlan,
    JsonCheckpointStore,
    MemoryCheckpointStore,
    NpzCheckpointStore,
    RankFailure,
    WorkerPoolDied,
    format_fault_report,
    resolve_checkpoint_store,
    resolve_fault_plan,
)
from repro.graphs import (
    Graph,
    read_edgelist,
    rmat_graph,
    snap_standin,
    uniform_random_graph,
    uniform_random_graph_nm,
    with_random_weights,
    write_edgelist,
)
from repro.machine import (
    CostParams,
    Grid,
    LocalExecutor,
    Machine,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro import obs
from repro.sparse import (
    KERNEL_ENV,
    KERNEL_MODES,
    KernelTraits,
    SpGemmResult,
    SpMat,
    count_ops,
    recognize,
    register_fast_path,
    resolve_kernel_mode,
    set_default_kernel_mode,
    spgemm,
)
from repro.tensor import SpTensor, contract
from repro.spgemm import (
    AutoPolicy,
    PinnedPolicy,
    Plan,
    Square2DPolicy,
)

__version__ = "1.0.0"

__all__ = [
    # algebra
    "Monoid",
    "Semiring",
    "MatMulSpec",
    "MULTPATH",
    "CENTPATH",
    "TROPICAL",
    "REAL_PLUS_TIMES",
    "MAX_MIN",
    "SemiringAction",
    "bellman_ford_action",
    "brandes_action",
    "left_project",
    # sparse / tensor
    "SpMat",
    "spgemm",
    "SpGemmResult",
    "count_ops",
    "SpTensor",
    "contract",
    # kernel dispatch tier
    "KERNEL_ENV",
    "KERNEL_MODES",
    "KernelTraits",
    "recognize",
    "register_fast_path",
    "resolve_kernel_mode",
    "set_default_kernel_mode",
    # core
    "mfbc",
    "mfbf",
    "mfbr",
    "betweenness_centrality",
    "edge_betweenness_centrality",
    "approximate_bc",
    "adaptive_vertex_bc",
    "ca_mfbc",
    "MFBCResult",
    "Engine",
    "SequentialEngine",
    # apps
    "bfs_levels",
    "sssp_distances",
    "connected_components",
    "triangle_count",
    # machine / dist
    "Machine",
    "CostParams",
    "Grid",
    "DistMat",
    "DistributedEngine",
    # local executors (rank-parallel simulation backend)
    "LocalExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "resolve_executor",
    # observability
    "obs",
    # correctness checking
    "CheckConfig",
    "CheckedEngine",
    "CheckError",
    "CheckFailure",
    "Violation",
    "check_spmat",
    "check_distmat",
    "check_ledger",
    "check_matrix",
    "maybe_checked",
    "resolve_check_config",
    # fault injection + tolerance
    "FaultPlan",
    "FaultEvent",
    "FaultError",
    "RankFailure",
    "CorruptPayload",
    "WorkerPoolDied",
    "DeadlineExceeded",
    "resolve_fault_plan",
    "format_fault_report",
    "CheckpointStore",
    "CorruptCheckpoint",
    "MemoryCheckpointStore",
    "JsonCheckpointStore",
    "NpzCheckpointStore",
    "resolve_checkpoint_store",
    # elastic recovery
    "ElasticPolicy",
    "resolve_elastic",
    "RecoveryError",
    "RecoveryReport",
    # spgemm plans
    "Plan",
    "AutoPolicy",
    "PinnedPolicy",
    "Square2DPolicy",
    # graphs
    "Graph",
    "rmat_graph",
    "uniform_random_graph",
    "uniform_random_graph_nm",
    "snap_standin",
    "with_random_weights",
    "read_edgelist",
    "write_edgelist",
    # baselines
    "brandes_bc",
    "combblas_bc",
    # analysis
    "mteps",
    "mteps_per_node",
    "model_run",
    "strong_scaling",
    "edge_weak_scaling",
    "vertex_weak_scaling",
    "__version__",
]
