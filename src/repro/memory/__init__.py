"""Memory-pressure robustness: spill-to-disk store, OOM degradation ladder.

See :mod:`repro.memory.spill` (the checksummed segment store),
:mod:`repro.memory.manager` (LRU eviction under pressure), and
:mod:`repro.memory.ladder` (the driver-level degradation ladder), plus the
"memory ladder" section of ``docs/robustness.md``.
"""

from repro.memory.ladder import MemoryLadder
from repro.memory.manager import MemoryManager
from repro.memory.spill import SpillError, SpillSegment, SpillStore

__all__ = [
    "MemoryLadder",
    "MemoryManager",
    "SpillError",
    "SpillSegment",
    "SpillStore",
]
