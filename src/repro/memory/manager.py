"""The memory manager: LRU eviction of spillable residents under pressure.

One :class:`MemoryManager` hangs off every :class:`~repro.machine.Machine`
(``machine.memory``).  Long-lived matrices register themselves as
*spillable* (the engine registers its loop invariants — the adjacency and
its transpose — whose blocks and replica copies dominate the resting
footprint); :meth:`touch` maintains recency so the eviction order is LRU.

``Machine.allocate`` calls :meth:`relieve` when a charge would overflow the
per-rank budget: replicas on the pressured rank go first (cold by
definition — they are only read at repair time), then the least recently
used matrices' resident blocks, until enough words are freed or nothing
spillable remains.  Only then does the allocation raise
:class:`~repro.machine.MemoryLimitExceeded` — which the MFBC driver's
degradation ladder (:mod:`repro.memory.ladder`) catches.

Every spill/unspill round-trips through the checksummed
:class:`~repro.memory.spill.SpillStore`, so relieved runs stay
bit-identical to unpressured ones.
"""

from __future__ import annotations

import weakref

from repro.memory.spill import SpillStore
from repro.obs import api as obs

__all__ = ["MemoryManager"]


class MemoryManager:
    """Registry of spillable matrices + the eviction policy.

    Parameters
    ----------
    machine:
        The owning machine (budget, ledger, fault plan).
    spill_dir:
        Segment directory for the lazily created :class:`SpillStore`;
        ``None`` means a private temporary directory on first eviction.
    """

    def __init__(self, machine, spill_dir=None) -> None:
        self._machine_ref = weakref.ref(machine)
        self.spill_dir = spill_dir
        self._store: SpillStore | None = None
        #: insertion-ordered LRU: key id(mat) -> (weakref, label); the
        #: oldest entry is the coldest candidate
        self._registry: dict[int, tuple[weakref.ref, str]] = {}
        self._in_relief = False
        #: arm SpGEMM expansion-chunk staging (set by the ladder's spill
        #: rung; read by DistributedEngine.spgemm)
        self.chunk_staging = False
        self.relieved_words = 0
        self.reliefs = 0

    @property
    def machine(self):
        return self._machine_ref()

    def store(self) -> SpillStore:
        """The spill store, created on first use."""
        if self._store is None:
            self._store = SpillStore(self.spill_dir, machine=self.machine)
        return self._store

    # -- registry -------------------------------------------------------------

    def register(self, mat, label: str = "") -> None:
        """Mark ``mat`` (a :class:`~repro.dist.DistMat`) spillable."""
        key = id(mat)
        if key in self._registry:
            self.touch(mat)
            return
        self._registry[key] = (weakref.ref(mat), label)

    def touch(self, mat) -> None:
        """Bump ``mat`` to most-recently-used (protects in-flight operands)."""
        key = id(mat)
        entry = self._registry.pop(key, None)
        if entry is not None:
            self._registry[key] = entry

    def _live(self):
        """Registered matrices oldest-first, dropping dead weakrefs."""
        out = []
        for key in list(self._registry):
            ref, label = self._registry[key]
            mat = ref()
            if mat is None:
                del self._registry[key]
            else:
                out.append((mat, label))
        return out

    # -- eviction -------------------------------------------------------------

    def relieve(self, rank: int, need_words: int, *, site: str = "allocate") -> int:
        """Free at least ``need_words`` on ``rank`` by spilling; best effort.

        Returns the words actually freed.  Replicas on the rank go first,
        then LRU matrices' resident blocks.  Never raises: when nothing
        spillable remains, the caller's budget check fails as before.
        """
        if self._in_relief:
            return 0
        machine = self.machine
        if machine is None:
            return 0
        self._in_relief = True
        freed = 0
        try:
            store = self.store()
            candidates = self._live()
            # replicas first: pure redundancy, only read at repair time
            for mat, _label in candidates:
                if freed >= need_words:
                    break
                freed += mat.spill_replicas(store, rank=rank)
            for mat, _label in candidates:
                if freed >= need_words:
                    break
                freed += mat.spill_blocks(store, rank=rank)
        finally:
            self._in_relief = False
        if freed:
            self.reliefs += 1
            self.relieved_words += freed
            plan = machine.faults
            if plan is not None:
                plan.note(
                    "spill",
                    "evicted",
                    site=site,
                    rank=rank,
                    words=int(freed),
                    needed=int(need_words),
                )
            elif obs.enabled():
                obs.count("memory.reliefs", 1.0, site=site)
        return freed

    def spill_all(self) -> int:
        """Force-spill every registered matrix everywhere (a ladder rung)."""
        if self._in_relief:
            return 0
        machine = self.machine
        if machine is None:
            return 0
        self._in_relief = True
        freed = 0
        try:
            store = self.store()
            for mat, _label in self._live():
                freed += mat.spill_replicas(store)
                freed += mat.spill_blocks(store)
        finally:
            self._in_relief = False
        if freed:
            self.reliefs += 1
            self.relieved_words += freed
        return freed

    def snapshot(self) -> dict:
        out = {
            "registered": len(self._registry),
            "reliefs": self.reliefs,
            "relieved_words": self.relieved_words,
        }
        if self._store is not None:
            out.update(self._store.snapshot())
        return out
