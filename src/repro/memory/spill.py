"""The spill-to-disk block store: checksummed, atomic, generation-rotated.

Out-of-core runs (hypersparse blocks at high ``p``, ingest-scale working
sets) need somewhere to put cold state when a rank's budget is tight.  A
:class:`SpillStore` holds evicted :class:`~repro.sparse.SpMat` blocks as
one ``.npz`` segment per block, written through
:func:`~repro.faults.checkpoint.atomic_save_npz` (temp file +
``os.replace``), CRC-32-checksummed, and generation-rotated: re-spilling a
key moves the previous segment to ``<key>.1`` so a torn newest generation
falls back to the last durable one instead of losing the block.

Torn writes are a first-class failure mode here: every spill is verified
by reading the segment back and comparing its CRC before the resident
block may be dropped — a segment that fails verification is discarded and
the eviction aborted (the block simply stays resident), so a torn write
can degrade relief but never corrupt data.  The ``tear`` fault kind
(:class:`~repro.faults.FaultPlan`) injects exactly that failure.

Spill traffic is charged to the machine ledger under the ``"spill"``
category (modeled local I/O: ``spill_alpha + words · spill_beta`` per
segment) and surfaced via ``memory.spill.*`` obs counters.
"""

from __future__ import annotations

import os
import tempfile
import zipfile

import numpy as np

from repro.faults.checkpoint import atomic_save_npz
from repro.faults.plan import payload_checksum
from repro.obs import api as obs
from repro.sparse.spmatrix import SpMat

__all__ = ["SpillError", "SpillSegment", "SpillStore"]

#: load failures that mean "this generation is torn/corrupt, try the next"
_LOAD_ERRORS = (ValueError, KeyError, EOFError, OSError, zipfile.BadZipFile)


class SpillError(RuntimeError):
    """No durable generation of a spilled segment could be read back."""


class SpillSegment:
    """Handle to one spilled block: where it lives and how to verify it."""

    __slots__ = ("key", "path", "crc", "words", "nnz", "monoid", "generation")

    def __init__(self, key, path, crc, words, monoid, generation=0, nnz=0):
        self.key = key
        self.path = path
        self.crc = crc
        self.words = words
        self.nnz = nnz
        self.monoid = monoid
        self.generation = generation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpillSegment({self.key!r}, words={self.words}, gen={self.generation})"


def _block_payload(blk: SpMat) -> dict:
    payload = {"rows": blk.rows, "cols": blk.cols}
    for name in blk.monoid.field_names:
        payload[f"f_{name}"] = np.asarray(blk.vals[name])
    return payload


def _block_from_npz(data, monoid) -> SpMat:
    import json

    meta = json.loads(bytes(data["meta"]).decode())
    vals = {name: data[f"f_{name}"] for name in monoid.field_names}
    return SpMat(
        int(meta["nrows"]),
        int(meta["ncols"]),
        data["rows"],
        data["cols"],
        vals,
        monoid,
        canonical=True,
    )


class SpillStore:
    """On-disk segment store for evicted blocks.

    Parameters
    ----------
    directory:
        Segment directory.  ``None`` creates a private temporary directory
        removed when the store is garbage-collected.
    machine:
        Optional :class:`~repro.machine.Machine`; when given, spill and
        unspill traffic is charged to its ledger (category ``"spill"``).
    keep:
        Older generations retained per key (the newest that verifies wins
        at fetch time).
    """

    def __init__(self, directory=None, *, machine=None, keep: int = 1) -> None:
        if keep < 0:
            raise ValueError(f"keep must be non-negative, got {keep}")
        self._tmpdir = None
        if directory is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-spill-")
            directory = self._tmpdir.name
        else:
            os.makedirs(directory, exist_ok=True)
        self.directory = os.fspath(directory)
        self.machine = machine
        self.keep = int(keep)
        #: running totals (also mirrored onto obs counters)
        self.spilled_blocks = 0
        self.restored_blocks = 0
        self.spilled_words = 0
        self.restored_words = 0
        self.torn_writes = 0

    # -- paths and rotation ---------------------------------------------------

    def _path(self, key: str, generation: int = 0) -> str:
        base = os.path.join(self.directory, f"{key}.npz")
        return base if generation == 0 else f"{base}.{generation}"

    def _rotate(self, key: str) -> None:
        """Shift existing generations of ``key`` one slot older."""
        if os.path.exists(self._path(key, self.keep)):
            os.remove(self._path(key, self.keep))
        for gen in range(self.keep, 0, -1):
            older = self._path(key, gen - 1)
            if os.path.exists(older):
                os.replace(older, self._path(key, gen))

    # -- spill / fetch --------------------------------------------------------

    def spill(self, key: str, blk: SpMat, *, rank: int | None = None,
              site: str = "spill") -> "SpillSegment | None":
        """Write ``blk`` as the newest generation of ``key``; verify; charge.

        Returns the segment handle, or ``None`` when the written segment
        failed read-back verification (torn write) — the caller must then
        keep the block resident.
        """
        crc = payload_checksum(blk)
        words = blk.words()
        self._rotate(key)
        path = self._path(key)
        atomic_save_npz(
            path,
            _block_payload(blk),
            meta={"nrows": blk.nrows, "ncols": blk.ncols, "crc": crc},
        )
        plan = self._fault_plan()
        if plan is not None and plan.take_tear(site):
            plan.note("tear", "injected", site=site, key=key)
            _tear_file(path)
        seg = SpillSegment(key, path, crc, words, blk.monoid, nnz=blk.nnz)
        # write-then-verify: only a read-back that matches the CRC makes the
        # segment durable enough to drop the resident block
        try:
            restored = self._load_generation(seg, 0)
        except _LOAD_ERRORS:
            restored = None
        if restored is None or payload_checksum(restored) != crc:
            self.torn_writes += 1
            if plan is not None:
                plan.note("tear", "detected", site=site, key=key)
            elif obs.enabled():
                obs.count("memory.spill.torn", 1.0, site=site)
            if os.path.exists(path):
                os.remove(path)
            return None
        self.spilled_blocks += 1
        self.spilled_words += words
        self._charge(rank, words, op="spill")
        if obs.enabled():
            obs.count("memory.spill.events", 1.0, op="spill", site=site)
            obs.count("memory.spill.words", float(words), op="spill", site=site)
        return seg

    def fetch(self, seg: "SpillSegment", *, rank: int | None = None,
              site: str = "unspill") -> SpMat:
        """Read a segment back, newest durable generation first.

        Verifies the stored CRC; a torn newest generation falls back to the
        older rotated ones.  Raises :class:`SpillError` when none verifies.
        """
        errors = []
        for gen in range(self.keep + 1):
            try:
                blk = self._load_generation(seg, gen)
            except _LOAD_ERRORS as exc:
                errors.append(f"gen {gen}: {exc}")
                continue
            if blk is None:
                continue
            if payload_checksum(blk) != seg.crc:
                errors.append(f"gen {gen}: checksum mismatch")
                continue
            self.restored_blocks += 1
            self.restored_words += seg.words
            self._charge(rank, seg.words, op="unspill")
            if obs.enabled():
                obs.count("memory.spill.events", 1.0, op="unspill", site=site)
                obs.count(
                    "memory.spill.words", float(seg.words), op="unspill", site=site
                )
            return blk
        raise SpillError(
            f"spilled segment {seg.key!r} has no durable generation "
            f"({'; '.join(errors) or 'no file'})"
        )

    def drop(self, key: str) -> None:
        """Remove every generation of ``key`` (the block went resident)."""
        for gen in range(self.keep + 1):
            path = self._path(key, gen)
            if os.path.exists(path):
                os.remove(path)

    def _load_generation(self, seg: "SpillSegment", gen: int) -> SpMat | None:
        path = self._path(seg.key, gen)
        if not os.path.exists(path):
            return None
        with np.load(path) as data:
            return _block_from_npz(data, seg.monoid)

    # -- chunk staging (SpGEMM expansion) ------------------------------------

    def stage_chunk(self, key: str, arrays: dict, *, site: str = "spgemm"):
        """Stage one SpGEMM expansion chunk's reduced arrays to disk.

        Returns an opaque handle for :meth:`fetch_chunk`; the round trip is
        binary-exact, so staged and unstaged products are bit-identical.
        """
        path = os.path.join(self.directory, f"chunk-{key}.npz")
        atomic_save_npz(path, arrays)
        words = sum(a.nbytes for a in arrays.values()) // 8
        self._charge(None, words, op="spill")
        if obs.enabled():
            obs.count("memory.spill.events", 1.0, op="stage", site=site)
            obs.count("memory.spill.words", float(words), op="stage", site=site)
        return path

    def fetch_chunk(self, handle) -> dict:
        with np.load(handle) as data:
            out = {k: data[k] for k in data.files}
        os.remove(handle)
        return out

    # -- accounting -----------------------------------------------------------

    def _fault_plan(self):
        machine = self.machine
        return None if machine is None else machine._fault_hook

    def _charge(self, rank, words, *, op) -> None:
        if self.machine is not None:
            self.machine.charge_spill(rank, words, op=op)

    def snapshot(self) -> dict:
        return {
            "spilled_blocks": self.spilled_blocks,
            "restored_blocks": self.restored_blocks,
            "spilled_words": self.spilled_words,
            "restored_words": self.restored_words,
            "torn_writes": self.torn_writes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpillStore({self.directory!r}, spilled={self.spilled_blocks}, "
            f"restored={self.restored_blocks}, torn={self.torn_writes})"
        )


def _tear_file(path: str) -> None:
    """Truncate a just-written segment mid-file (injected torn write)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.truncate(max(size // 2, 1))
