"""The OOM degradation ladder: what the MFBC driver does when memory runs out.

Where :class:`~repro.machine.MemoryLimitExceeded` used to be terminal, the
driver now descends a ladder of degradations, each bit-identical to the
unpressured run:

1. **Shrink the batch width** — per-source rows of the multpath/centpath
   matrices never interact and cross-batch score accumulation is strictly
   left-to-right in source order, so halving ``nb`` halves the ``n × nb``
   working set without changing a single bit of the result (§5.3's
   time/storage knob, turned the other way).
2. **Spill cold blocks** — force every registered invariant (and the
   SpGEMM expansion chunks, via staging) out to the checksummed
   :class:`~repro.memory.SpillStore`; blocks fault back in on access.
3. **Drop replica redundancy** — the elastic replicas are pure overhead
   words; dropping them degrades recovery to source re-materialization
   (still correct, just slower) and is re-armed once pressure clears.
4. **Fall through** — re-raise into the existing elastic/retry ladder;
   when that is exhausted too, the error is terminal as before.

Every rung is recorded on the fault plan (kind ``mem``/``spill``), so the
``repro trace`` ``(kind, site)`` table shows what the ladder did.
"""

from __future__ import annotations

from repro.obs import api as obs

__all__ = ["MemoryLadder"]


class MemoryLadder:
    """Per-run ladder state for one driver (see module docstring).

    ``advance`` is called with the caught ``MemoryLimitExceeded`` and the
    width of the failing batch; it applies the next rung and returns its
    name, or ``None`` when the ladder is exhausted (caller re-raises).
    ``batch_size`` holds the (possibly shrunken) width to retry with.
    """

    #: floor on shrink rungs: stop halving below one source per batch
    def __init__(self, engine, *, site: str = "mfbc") -> None:
        self.engine = engine
        self.machine = getattr(engine, "machine", None)
        self.site = site
        self.batch_size: int | None = None
        self._spilled = False
        self._dropped = False
        #: words the drop rung freed — what re-arming will cost (the
        #: resident replica count is 0 once dropped, so it can't be used)
        self._dropped_words = 0
        self.rungs_taken: list[str] = []

    def _plan(self):
        return getattr(self.machine, "faults", None)

    def _manager(self):
        return getattr(self.machine, "memory", None)

    def _note(self, rung: str, **detail) -> None:
        self.rungs_taken.append(rung)
        plan = self._plan()
        if plan is not None:
            plan.note("mem", "degraded", site=self.site, rung=rung, **detail)
        elif obs.enabled():
            obs.count("memory.ladder", 1.0, rung=rung, site=self.site)

    def advance(self, exc, *, batch_width: int = 1) -> str | None:
        """Apply the next rung; return its name or ``None`` (exhausted)."""
        if batch_width > 1:
            self.batch_size = max(1, batch_width // 2)
            self._note("shrink_batch", batch_size=self.batch_size,
                       was=batch_width)
            return "shrink_batch"
        if not self._spilled:
            self._spilled = True
            manager = self._manager()
            freed = 0
            if manager is not None:
                freed = manager.spill_all()
                manager.chunk_staging = True
            if freed > 0:
                self._note("spill", words=int(freed))
                return "spill"
        if not self._dropped:
            self._dropped = True
            drop = getattr(self.engine, "drop_redundancy", None)
            freed = drop() if drop is not None else 0
            if freed > 0:
                self._dropped_words = int(freed)
                self._note("drop_redundancy", words=int(freed))
                return "drop_redundancy"
        plan = self._plan()
        if plan is not None:
            plan.note(
                "mem",
                "abandoned",
                site=self.site,
                rungs=",".join(self.rungs_taken) or "none",
                error=str(exc),
            )
        return None

    def after_success(self) -> None:
        """Called after each completed batch: re-arm what pressure dropped.

        Replica redundancy returns once the pressured rank has headroom for
        it again; chunk staging is switched off as soon as a batch fits.
        """
        machine = self.machine
        manager = self._manager()
        if manager is not None and manager.chunk_staging:
            manager.chunk_staging = False
        if not self._dropped or machine is None:
            return
        rearm = getattr(self.engine, "rearm_redundancy", None)
        if rearm is None:
            return
        budget = machine.memory_words
        if budget is not None and self._dropped_words > 0:
            headroom = budget - machine.memory_used()
            if headroom < 2 * self._dropped_words:
                return  # pressure has not cleared yet
        if rearm():
            self._dropped = False
            self._dropped_words = 0
            plan = self._plan()
            if plan is not None:
                plan.note("mem", "recovered", site=self.site, rung="rearm")
            elif obs.enabled():
                obs.count("memory.ladder", 1.0, rung="rearm", site=self.site)
