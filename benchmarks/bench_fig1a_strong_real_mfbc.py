"""Figure 1(a): strong scaling of MFBC on the real-graph stand-ins.

Paper series: MTEPS/node vs node count (2 → 128) for Friendster, Orkut,
LiveJournal, and Patents.  Expected shape (§7.2):

* Orkut (densest, low diameter) achieves the highest rate;
* LiveJournal sits below Orkut; the patent graph's large diameter makes it
  the slowest by a wide margin;
* each graph strong-scales with moderately decaying efficiency (~30×
  speedup over 64× more nodes in the paper);
* Friendster only became feasible at ≥32 nodes in the paper (memory).
"""

from conftest import PAPER_NODE_COUNTS

from repro.analysis import strong_scaling
from repro.core import mfbc
from repro.graphs import snap_standin

GRAPH_IDS = ["frd", "ork", "ljm", "cit"]
#: scaled-down stand-ins: offsets keep each bench run under a minute
OFFSETS = {"frd": -5, "ork": -3, "ljm": -3, "cit": -3}
SOURCE_BATCHES = 2
BATCH_SIZE = 64


def build_rows():
    rows = []
    for gid in GRAPH_IDS:
        g = snap_standin(gid, scale_offset=OFFSETS[gid], seed=0)
        pts = strong_scaling(
            g,
            PAPER_NODE_COUNTS,
            batch_sizes=[BATCH_SIZE],
            max_batches=SOURCE_BATCHES,
        )
        for pt in pts:
            rows.append((gid, g.n, g.m, pt.p, round(pt.mteps_per_node, 2)))
    return rows


def test_fig1a_series(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "fig1a_strong_real_mfbc",
        "Figure 1(a) reproduction: MFBC strong scaling on real-graph "
        "stand-ins (MTEPS/node vs nodes)",
        ["graph", "n", "m", "nodes", "MTEPS/node"],
        rows,
    )
    by_graph = {}
    for gid, _, _, p, rate in rows:
        by_graph.setdefault(gid, {})[p] = rate
    # paper shape 1: Orkut (densest) beats LiveJournal beats Patents
    assert by_graph["ork"][2] > by_graph["ljm"][2] > by_graph["cit"][2]
    # paper shape 2: every graph keeps nonzero throughput at 128 nodes
    for gid in GRAPH_IDS:
        assert by_graph[gid][128] > 0


def test_fig1a_kernel(benchmark):
    """Timed kernel: one MFBC batch on the Orkut stand-in."""
    g = snap_standin("ork", scale_offset=-4, seed=0)
    benchmark.pedantic(
        lambda: mfbc(g, batch_size=32, max_batches=1), rounds=3, iterations=1
    )
