"""Fault-injection overhead: an inert FaultPlan must cost (almost) nothing.

The robustness subsystem's hot-path contract: `Machine(p, faults=...)`
with a plan that can never fire — every rate zero, no script, no checksum,
no memory factor — leaves `machine._fault_hook` unset, so the charge paths
and payload deliveries pay nothing beyond a `None` check.  This bench
holds that line end-to-end: a full MFBC batch with an inert plan attached
must stay within 2% of the plain-machine wall-clock.

For context it also times an *armed but silent* plan (vanishingly small
rates that deterministically never fire under the seeded rng): that is
the true cost of running the hooks — one rng draw per charge — and is
recorded but not asserted, since it is a different contract.

All three configurations must produce bit-identical scores and ledger
snapshots: a plan that injects nothing must change nothing.
"""

import time

import numpy as np

from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.faults import resolve_fault_plan
from repro.graphs import rmat_graph
from repro.machine import Machine

SCALE = 12
DEGREE = 8
P = 4
BATCH = 32
REPS = 5
OVERHEAD_CEILING = 0.02  # inert plan: <2% wall-clock overhead

#: every rate zero -> resolve_fault_plan() yields an unarmed plan and the
#: machine skips the hooks entirely
INERT_SPEC = "seed:0,crash:0,corrupt:0,straggle:0,poolkill:0"
#: armed (nonzero rates) but vanishingly unlikely to fire -> hooks run on
#: every charge, nothing injects (deterministic under the seeded rng)
SILENT_SPEC = "seed:0,crash:1e-9,straggle:1e-9,limit:1"


def run_config(graph, faults):
    """Best-of-REPS wall-clock for one MFBC batch under a fault config."""
    best = float("inf")
    scores = snap = None
    for _ in range(REPS):
        machine = Machine(P, faults=faults)
        engine = DistributedEngine(machine)
        t0 = time.perf_counter()
        res = mfbc(graph, batch_size=BATCH, max_batches=1, engine=engine)
        best = min(best, time.perf_counter() - t0)
        scores, snap = res.scores, machine.ledger.snapshot()
        machine.executor.close()
    return scores, snap, best


def test_fault_overhead(save_table):
    graph = rmat_graph(scale=SCALE, avg_degree=DEGREE, seed=0)
    run_config(graph, None)  # warm-up: page in code paths and allocator

    ref_scores, ref_snap, base_wall = run_config(graph, None)
    configs = [
        ("no plan", None),
        ("inert plan", INERT_SPEC),
        ("armed, silent", SILENT_SPEC),
    ]
    rows = []
    walls = {}
    for label, spec in configs:
        if spec is None:
            scores, snap, wall = ref_scores, ref_snap, base_wall
        else:
            scores, snap, wall = run_config(graph, spec)
        walls[label] = wall
        identical = bool(np.array_equal(scores, ref_scores)) and snap == ref_snap
        rows.append(
            [
                label,
                f"{wall:.3f}",
                f"{(wall / base_wall - 1.0) * 100:+.2f}%",
                "yes" if identical else "NO",
            ]
        )
        # a plan that injects nothing must change nothing
        assert np.array_equal(scores, ref_scores), label
        assert snap == ref_snap, label

    # the inert plan really is unarmed, so the machine never installed hooks
    assert not resolve_fault_plan(INERT_SPEC, env=False).armed

    save_table(
        "fault_overhead",
        f"Fault-plan overhead: MFBC scale-{SCALE} R-MAT, p={P}, "
        f"batch={BATCH}, best of {REPS}",
        ["configuration", "wall s", "vs no plan", "bit-identical"],
        rows,
    )

    overhead = walls["inert plan"] / base_wall - 1.0
    assert overhead < OVERHEAD_CEILING, (
        f"inert fault plan added {overhead * 100:.2f}% wall-clock "
        f"(ceiling {OVERHEAD_CEILING * 100:.0f}%)"
    )
