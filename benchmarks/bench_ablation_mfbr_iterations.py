"""Ablation: MFBr's iteration count vs the Dijkstra alternative (§4.2.3).

The paper: back-propagating with the counter-gated maximal frontier "is much
faster than using Dijkstra's algorithm to compute shortest-paths, since it
requires the same number of iterations as Bellman-Ford (Dijkstra's algorithm
requires n − 1 matrix multiplications)".

This bench counts the generalized products each strategy needs on the same
graphs: MFBF+MFBr iterations (measured) versus the settled-one-vertex-per-
round Dijkstra bound (n − 1 per batch) and the hop diameter (the lower
bound for frontier algorithms).
"""

from repro.core import mfbc
from repro.graphs import snap_standin, uniform_random_graph_nm, with_random_weights

BATCH = 32


def build_rows():
    rows = []
    cases = [
        ("uniform k=8", uniform_random_graph_nm(512, 8.0, seed=13)),
        ("uniform weighted", with_random_weights(
            uniform_random_graph_nm(512, 8.0, seed=13), 1, 100, seed=13
        )),
        ("ork stand-in", snap_standin("ork", scale_offset=-4, seed=0)),
        ("cit stand-in", snap_standin("cit", scale_offset=-5, seed=0)),
    ]
    for label, g in cases:
        res = mfbc(g, batch_size=BATCH, max_batches=1)
        batch = res.stats.batches[0]
        rows.append(
            (
                label,
                g.n,
                g.diameter_hops(),
                batch.mfbf_iterations,
                batch.mfbr_iterations,
                g.n - 1,  # Dijkstra products per batch
            )
        )
    return rows


def test_ablation_mfbr_iterations(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "ablation_mfbr_iterations",
        "Ablation §4.2.3: generalized products per batch — maximal-frontier "
        "vs the Dijkstra bound (n−1)",
        ["graph", "n", "hop diameter", "MFBF products", "MFBr products",
         "Dijkstra products"],
        rows,
    )
    for label, n, d, bf, br, dijkstra in rows:
        # the paper's claim: frontier iterations track the diameter, not n —
        # always strictly fewer products than Dijkstra, and an order of
        # magnitude fewer on low-diameter graphs
        assert bf <= 3 * d + 3, label
        assert br <= 3 * d + 5, label
        assert bf + br < dijkstra, label
        if d <= 10:
            assert bf + br < dijkstra / 10, label


def test_ablation_weighted_frontier_density(benchmark, save_table):
    """§5.3.1 / §7.2: weighted graphs revisit vertices — the total frontier
    mass exceeds the one-appearance-per-vertex bound that holds for
    unweighted graphs, and the iteration count roughly doubles."""

    def run():
        g = uniform_random_graph_nm(512, 8.0, seed=17)
        gw = with_random_weights(g, 1, 100, seed=17)
        out = {}
        for label, graph in [("unweighted", g), ("weighted", gw)]:
            res = mfbc(graph, batch_size=BATCH, max_batches=1)
            batch = res.stats.batches[0]
            bf_frontier = sum(
                it.frontier_nnz for it in batch.iterations if it.phase == "mfbf"
            )
            out[label] = (
                batch.mfbf_iterations,
                bf_frontier,
                BATCH * graph.n,  # the unweighted upper bound n·nb
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (label, it, fr, bound, f"{fr / bound:.3f}")
        for label, (it, fr, bound) in out.items()
    ]
    save_table(
        "ablation_weighted_frontiers",
        "Ablation §5.3.1: frontier mass Σ nnz(F_i) relative to the "
        "unweighted bound n·nb",
        ["case", "MFBF iterations", "Σ nnz(F_i)", "n·nb", "ratio"],
        rows,
    )
    un_it, un_fr, bound = out["unweighted"]
    w_it, w_fr, _ = out["weighted"]
    assert un_fr <= bound  # each vertex in exactly one frontier (§5.3)
    assert w_fr > un_fr  # weighted graphs revisit vertices
    assert w_it > un_it  # and need more iterations
