"""Overload bench: goodput and tail latency vs offered load, shed on/off.

Pushes a pinned :class:`~repro.serve.BCService` past saturation with the
open-loop arrival model from :mod:`repro.serve.loadgen` (query *i* released
at ``t0 + i/offered_qps`` regardless of completions) and compares two
services at each overload factor:

* **shedding on** — a tight admission bound (``max_queued``) plus the
  watermark governor: excess arrivals get a structured reject in
  microseconds, brownout downgrades whole-graph exact ``bc`` to
  fixed-pivot ``approx_bc``, and the queue never grows past its bound;
* **shedding off** — the same service with an effectively unbounded
  queue (the pre-overload behaviour): every arrival is admitted and
  waits.

The table committed to ``benchmarks/results/overload.txt`` is the classic
load-shedding picture: without admission control the backlog — and with
it every admitted query's p50/p99 — grows with the overload factor,
while with shedding the queue and the admitted tail stay flat no matter
how hard the stream pushes.  The price is explicit 503s: shed requests
subtract from goodput, which is exactly the trade a deadline-bound
client wants (a fast structured reject beats an answer that arrives
after it stopped mattering).

Contracts asserted: zero non-shed failures everywhere; the shedding
service's queue stays within its bound while the unbounded service's
backlog exceeds it at high overload; at the highest factor the shedding
service's admitted p99 beats the unbounded service's.
"""

from repro.graphs import rmat_graph
from repro.serve import BCService, OverloadConfig
from repro.serve.loadgen import (
    DEFAULT_MIX,
    DirectClient,
    generate_queries,
    run_load,
)

SCALE = 6
DEGREE = 8
P = 4
SEED = 0
DURATION = 6.0  # seconds of offered arrivals per cell
FACTORS = [1, 2, 4, 8]
MAX_QUEUED = 48
CACHE_CAPACITY = 8  # small so load reaches the machine, not the cache
MIX = {**DEFAULT_MIX, "bc": 0.05}  # give brownout something to downgrade


def _calibrate(graph) -> float:
    service = BCService(
        graph, p=P, batch_window=0.005, cache_capacity=CACHE_CAPACITY
    )
    try:
        specs = generate_queries(150, graph.n, seed=SEED + 1, mix=MIX)
        report = run_load(DirectClient(service), specs, concurrency=16)
    finally:
        service.close()
    assert report.failed == 0
    return report.throughput_qps


def _drive(graph, offered_qps: float, shedding: bool):
    cfg = OverloadConfig(max_queued=MAX_QUEUED if shedding else 1_000_000)
    service = BCService(
        graph,
        p=P,
        batch_window=0.005,
        cache_capacity=CACHE_CAPACITY,
        overload=cfg,
    )
    n_queries = max(int(offered_qps * DURATION), 32)
    specs = generate_queries(n_queries, graph.n, seed=SEED, mix=MIX)
    try:
        report = run_load(
            DirectClient(service),
            specs,
            concurrency=2 * MAX_QUEUED + 32,
            offered_qps=offered_qps,
        )
        peak = service.stats()["admission"]["peak_queued"]
    finally:
        service.close()
    return report, peak


def test_overload(save_table):
    graph = rmat_graph(scale=SCALE, avg_degree=DEGREE, seed=SEED)
    capacity = _calibrate(graph)

    rows = []
    cells = {}
    for factor in FACTORS:
        offered = factor * capacity
        for shedding in (True, False):
            report, peak = _drive(graph, offered, shedding)
            assert report.failed == 0, (factor, shedding)
            cells[(factor, shedding)] = (report, peak)
            rows.append(
                [
                    f"{factor}x",
                    "on" if shedding else "off",
                    f"{offered:.0f}",
                    f"{report.goodput_qps:.1f}",
                    f"{report.percentile(50) * 1e3:.0f}",
                    f"{report.percentile(99) * 1e3:.0f}",
                    f"{report.shed / report.queries:.1%}",
                    f"{report.degraded / max(report.queries, 1):.1%}",
                    peak,
                ]
            )

    save_table(
        "overload",
        f"Overload: goodput/p99 vs offered load, shedding on "
        f"(max_queued={MAX_QUEUED}) vs off, scale-{SCALE} R-MAT, p={P}, "
        f"calibrated capacity {capacity:.0f} q/s",
        [
            "load",
            "shed",
            "offered q/s",
            "goodput q/s",
            "p50 ms",
            "p99 ms",
            "shed %",
            "degraded %",
            "peak queue",
        ],
        rows,
    )

    top = FACTORS[-1]
    # admission control keeps the queue within its configured bound
    for factor in FACTORS:
        _, peak = cells[(factor, True)]
        assert peak <= MAX_QUEUED, (factor, peak)
    # without it the backlog blows through that bound at high overload
    _, peak_unbounded = cells[(top, False)]
    assert peak_unbounded > MAX_QUEUED, peak_unbounded
    # and queueing delay shows up in the admitted tail: shedding's p99 wins
    shed_p99 = cells[(top, True)][0].percentile(99)
    unbounded_p99 = cells[(top, False)][0].percentile(99)
    assert shed_p99 < unbounded_p99, (shed_p99, unbounded_p99)
