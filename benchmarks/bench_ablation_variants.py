"""Ablation: the SpGEMM algorithm space at a fixed product (§5.2, §6.2).

DESIGN.md calls out the algorithm-variant choice as the central design
decision of the mini-CTF layer.  This ablation takes one representative
MFBC product (a frontier times the adjacency matrix) on a 16-rank simulated
machine and executes *every* §5.2 plan, reporting measured critical-path
words and messages — making visible why the model-driven selector matters:
the spread between the best and worst plan is large, and no single variant
wins for both operand-imbalance directions.
"""

import numpy as np

from repro.algebra import MULTPATH, MatMulSpec, bellman_ford_action
from repro.dist import DistMat
from repro.machine.grid import near_square_shape
from repro.graphs import uniform_random_graph_nm
from repro.machine import Machine
from repro.sparse import SpMat
from repro.spgemm import AutoPolicy, execute_plan
from repro.spgemm.selector import enumerate_plans

P = 16
BF = MatMulSpec(MULTPATH, bellman_ford_action, "bf")


def make_product(n=512, nb=64, frontier_fill=0.05, seed=3):
    rng = np.random.default_rng(seed)
    g = uniform_random_graph_nm(n, 16.0, seed=seed)
    adj = g.adjacency()
    k = max(int(frontier_fill * n * nb), nb)
    rows = rng.integers(0, nb, k)
    cols = rng.integers(0, n, k)
    f = SpMat(nb, n, rows, cols, MULTPATH.make(rng.integers(1, 5, k), np.ones(k)), MULTPATH)
    return f, adj


def build_rows():
    f, adj = make_product()
    pr, pc = near_square_shape(P)
    rows = []
    ref = None
    for plan in enumerate_plans(P):
        machine = Machine(P)
        home = np.arange(P).reshape(pr, pc)
        df = DistMat.distribute(f, machine, home, charge=False)
        da = DistMat.distribute(adj, machine, home, charge=False)
        c, ops = execute_plan(plan, df, da, BF, home)
        got = c.gather(charge=False)
        if ref is None:
            ref = got
        assert got.equals(ref), plan.describe()
        led = machine.ledger.snapshot()
        rows.append(
            (
                plan.describe(),
                round(led["words"]),
                round(led["msgs"]),
                f"{led['time'] * 1e3:.3f}",
            )
        )
    rows.sort(key=lambda r: float(r[3]))
    return rows


def test_ablation_variant_space(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "ablation_variants",
        f"Ablation: every §5.2 plan on one frontier×adjacency product "
        f"(p={P}, measured critical-path costs, sorted by modeled time)",
        ["plan", "W (words)", "S (msgs)", "time (ms)"],
        rows,
    )
    times = [float(r[3]) for r in rows]
    # the spread justifies the mapping search: >2x between best and worst
    assert times[-1] > 2.0 * times[0]


def test_ablation_selector_close_to_best(benchmark, save_table):
    """The AutoPolicy choice lands within a small factor of the measured
    best plan (the model is approximate: it estimates nnz(C))."""

    def run():
        f, adj = make_product()
        pr, pc = near_square_shape(P)
        # measured best
        best_time = None
        for plan in enumerate_plans(P):
            machine = Machine(P)
            home = np.arange(P).reshape(pr, pc)
            df = DistMat.distribute(f, machine, home, charge=False)
            da = DistMat.distribute(adj, machine, home, charge=False)
            execute_plan(plan, df, da, BF, home)
            t = machine.ledger.critical_time()
            if best_time is None or t < best_time:
                best_time = t
        # selector's choice, measured
        machine = Machine(P)
        home = np.arange(P).reshape(pr, pc)
        df = DistMat.distribute(f, machine, home, charge=False)
        da = DistMat.distribute(adj, machine, home, charge=False)
        plan = AutoPolicy().select(
            machine, f.nrows, f.ncols, adj.ncols, f.nnz, adj.nnz
        )
        execute_plan(plan, df, da, BF, home)
        return plan.describe(), machine.ledger.critical_time(), best_time

    chosen, t_sel, t_best = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "ablation_selector",
        "Ablation: model-selected plan vs measured best",
        ["selected plan", "selected time (ms)", "best time (ms)", "gap"],
        [
            (
                chosen,
                f"{t_sel * 1e3:.3f}",
                f"{t_best * 1e3:.3f}",
                f"{t_sel / t_best:.2f}x",
            )
        ],
    )
    assert t_sel <= 5.0 * t_best
