"""Theorem 5.1 and §5.3.2–§5.3.4: the analytical cost comparison tables.

Evaluates the paper's closed-form claims at paper-scale parameters
(n = 10⁶ vertices, m = 10⁸ edges, p up to 32768) — these are pure formula
evaluations, so they run at the *original* scale:

* MFBC matches APSP's bandwidth ``O(n²/√(cp))`` with ``O(c·m/p)`` memory
  instead of ``Ω(c·n²/p)`` (§5.3.2);
* at the optimal replication factor the headline ``O(n√m/p^{2/3})``
  bandwidth beats APSP by up to ``min(n/√m, p^{2/3})``;
* the strong-scaling range ``p₀ → p₀^{3/2}·n²/m`` exceeds dense matrix
  multiplication's ``p₀ → p₀^{3/2}`` (§5.3.4).
"""

import math

from repro.analysis.theory import (
    apsp_bandwidth_words,
    apsp_memory_words,
    best_replication_factor,
    mfbc_bandwidth_words,
    mfbc_latency_messages,
    mfbc_memory_words,
    strong_scaling_range,
)

N, M = 1.0e6, 1.0e8


def build_bandwidth_rows():
    rows = []
    for p in [512, 4096, 32768]:
        c = best_replication_factor(N, M, p)
        rows.append(
            (
                int(p),
                f"{c:.1f}",
                f"{mfbc_bandwidth_words(N, M, p, c):.3e}",
                f"{apsp_bandwidth_words(N, p, min(c, p ** (1 / 3))):.3e}",
                f"{mfbc_memory_words(N, M, p, c):.3e}",
                f"{apsp_memory_words(N, p, min(c, p ** (1 / 3))):.3e}",
            )
        )
    return rows


def test_theory_bandwidth_table(benchmark, save_table):
    rows = benchmark.pedantic(build_bandwidth_rows, rounds=1, iterations=1)
    save_table(
        "theory_bandwidth",
        f"§5.3.2 reproduction: MFBC vs APSP bandwidth/memory at "
        f"n={N:.0e}, m={M:.0e} (words)",
        ["p", "c*", "W MFBC", "W APSP", "M MFBC", "M APSP"],
        rows,
    )
    # MFBC memory always far below APSP memory at every p
    for _, _, _, _, m_mfbc, m_apsp in rows:
        assert float(m_mfbc) < float(m_apsp)


def build_scaling_rows():
    rows = []
    for p0 in [64, 512]:
        all_costs, bandwidth = strong_scaling_range(N, M, p0)
        rows.append(
            (
                p0,
                f"{all_costs:.3e}",
                f"{bandwidth:.3e}",
                f"{p0 ** 1.5:.3e}",
            )
        )
    return rows


def test_theory_scaling_range(benchmark, save_table):
    rows = benchmark.pedantic(build_scaling_rows, rounds=1, iterations=1)
    save_table(
        "theory_scaling_range",
        "§5.3.4 reproduction: strong-scaling range vs dense MM",
        ["p0", "all-costs limit", "bandwidth limit", "dense MM limit"],
        rows,
    )
    for _, all_costs, bandwidth, dense in rows:
        assert float(bandwidth) > float(all_costs) > float(dense)


def build_latency_rows():
    rows = []
    for d in [8, 32]:
        for c in [1, 16]:
            rows.append(
                (
                    d,
                    c,
                    f"{mfbc_latency_messages(N, M, 4096, c, d=d):.3e}",
                )
            )
    return rows


def test_theory_latency(benchmark, save_table):
    rows = benchmark.pedantic(build_latency_rows, rounds=1, iterations=1)
    save_table(
        "theory_latency",
        "§5.3.3 reproduction: MFBC latency (messages) at p=4096",
        ["diameter d", "replication c", "S (msgs)"],
        rows,
    )
    # latency grows with diameter, falls with replication
    s = {(d, c): float(v) for d, c, v in rows}
    assert s[(32, 1)] > s[(8, 1)]
    assert s[(8, 16)] < s[(8, 1)]


def test_theory_speedup_headline(benchmark, save_table):
    """The p^{1/3} headline: with M = Θ(n²/p^{2/3}) and n/√m = p^{1/3},
    MFBC's bandwidth is p^{1/3}× lower than replicated-graph approaches."""

    def build():
        p = 4096
        # construct the regime n/√m = p^{1/3}
        m = (N / p ** (1 / 3)) ** 2
        headline = N * math.sqrt(m) / p ** (2 / 3)
        floyd = N * N / math.sqrt(p)
        return [(int(p), f"{m:.3e}", f"{headline:.3e}", f"{floyd:.3e}",
                 f"{floyd / headline:.2f}x")]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    save_table(
        "theory_headline",
        "§5.3.2 headline: MFBC vs Floyd-Warshall-class bandwidth in the "
        "n/√m = p^{1/3} regime",
        ["p", "m", "W MFBC", "W FW", "speedup"],
        rows,
    )
    assert float(rows[0][4].rstrip("x")) > 10
