"""Figure 2(b): vertex weak scaling on uniform random graphs.

Paper design: keep ``n/p`` and the average degree ``k = m/n`` constant.
Expected shape (§7.3): *both* implementations deteriorate with node count —
communication O(n²/√(cp)) grows ∝ p^{3/2} while per-node work O(mn/p) grows
only ∝ p, so the words-per-work ratio worsens ∝ √p; higher-degree
configurations achieve higher rates.
"""

from repro.analysis import model_run, mteps_per_node, vertex_weak_scaling
from repro.analysis.scaling import trace_combblas
from repro.graphs import uniform_random_graph_nm
from repro.spgemm import Square2DPolicy

#: scaled-down analogues of the paper's (n0=74K, k∈{74,737}) and
#: (n0=740K, k∈{7,74}) configurations
CONFIGS = [
    ("n0=64 k=24", 64, 24.0),
    ("n0=64 k=8", 64, 8.0),
    ("n0=160 k=8", 160, 8.0),
    ("n0=160 k=4", 160, 4.0),
]
P_VALUES = [2, 8, 32]
BATCH = 32
MAX_BATCHES = 2


#: CombBLAS points use square processor counts
P_SQUARE = [4, 16, 36]


def build_rows():
    rows = []
    for label, n0, k in CONFIGS:
        pts = vertex_weak_scaling(
            n0, k, P_VALUES, batch_size=BATCH, max_batches=MAX_BATCHES
        )
        for pt in pts:
            rows.append(
                (
                    f"{label} MFBC",
                    pt.p,
                    pt.n,
                    pt.m,
                    round(pt.mteps_per_node, 2),
                    round(pt.words * pt.p / max(pt.m * pt.n, 1), 5),
                )
            )
    # the CombBLAS series (square grids; the paper could not run its largest
    # vertex-weak configurations under CombBLAS at all)
    for label, n0, k in CONFIGS[:2]:
        for i, p in enumerate(P_SQUARE):
            g = uniform_random_graph_nm(int(n0 * p), k, seed=200 + i)
            stats, sources = trace_combblas(g, BATCH, max_batches=MAX_BATCHES)
            run = model_run(stats, g, p, policy=Square2DPolicy())
            rows.append(
                (
                    f"{label} CombBLAS",
                    p,
                    g.n,
                    g.m,
                    round(mteps_per_node(g, run.seconds, p, sources), 2),
                    round(run.words * p / max(g.m * g.n, 1), 5),
                )
            )
    return rows


def test_fig2b_series(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "fig2b_vertex_weak",
        "Figure 2(b) reproduction: vertex weak scaling on uniform random "
        "graphs (constant n/p and degree k)",
        ["config", "nodes", "n", "m", "MTEPS/node", "words/work"],
        rows,
    )
    by_cfg = {}
    for label, p, _, _, rate, wpw in rows:
        by_cfg.setdefault(label, {})[p] = (rate, wpw)
    # paper shape 1: higher degree at the same n0 gives a higher rate
    for p in P_VALUES:
        assert by_cfg["n0=64 k=24 MFBC"][p][0] > by_cfg["n0=64 k=8 MFBC"][p][0]
    # paper shape 1b: MFBC beats CombBLAS when the degree is large
    assert (
        by_cfg["n0=64 k=24 MFBC"][32][0]
        > by_cfg["n0=64 k=24 CombBLAS"][36][0]
    )
    # paper shape 2: unsustainability — "both implementations deteriorate in
    # performance rate with increasing node count" (§7.3): the per-node rate
    # at the largest p is strictly below the smallest-p rate for every
    # configuration.  (The underlying √p words-per-work growth shows in the
    # printed column once p is large enough for the memory budget to forbid
    # replication; at small p replication hides it, as the theory predicts.)
    for label, _, _ in CONFIGS:
        first = by_cfg[f"{label} MFBC"][P_VALUES[0]][0]
        last = by_cfg[f"{label} MFBC"][P_VALUES[-1]][0]
        assert last < first
