"""Serving-layer load bench: latency, throughput, coalescing, cache yield.

Drives a pinned :class:`~repro.serve.BCService` with the seeded mixed query
stream from :mod:`repro.serve.loadgen` (mostly single-source BC plus
BFS/SSSP/widest, sampled BC, and whole-graph queries, with a hot-set skew)
and records what the serving economics actually deliver:

* **latency** — wall-clock p50/p99 per query and end-to-end throughput;
* **coalescing factor** — swept sources per MFBC sweep: how many
  concurrent single-source queries shared one k-wide MFBF+MFBr pass
  (§5.3's batching economics applied to a query mix);
* **cache hit-rate** — the fraction of lookups answered at an unchanged
  graph version without touching the machine's ledger.

The bench sweeps the coalescing knobs (batch window off/on, max sweep
width) at fixed traffic, then scales the offered concurrency.  Two
contracts are asserted: zero failed queries everywhere, and coalescing
plus caching together must cut the number of sweeps well below the number
of computed queries once a window is armed.
"""

from repro.graphs import rmat_graph
from repro.serve import BCService
from repro.serve.loadgen import DirectClient, generate_queries, run_load

SCALE = 9
DEGREE = 8
P = 4
QUERIES = 400
SEED = 0


def test_serve_load(save_table):
    graph = rmat_graph(scale=SCALE, avg_degree=DEGREE, seed=SEED)
    specs = generate_queries(QUERIES, graph.n, seed=SEED)

    rows = []
    sweep_counts = {}
    for label, concurrency, max_batch, window in [
        ("no window", 16, 32, 0.0),
        ("window 2ms", 16, 32, 0.002),
        ("window 10ms", 16, 32, 0.010),
        ("narrow sweeps", 16, 4, 0.010),
        ("low concurrency", 2, 32, 0.010),
        ("high concurrency", 32, 32, 0.010),
    ]:
        service = BCService(graph, p=P, max_batch=max_batch, batch_window=window)
        try:
            report = run_load(
                DirectClient(service), specs, concurrency=concurrency
            )
        finally:
            service.close()
        assert report.failed == 0, label
        sweep_counts[label] = report.batches
        rows.append(
            [
                label,
                concurrency,
                max_batch,
                f"{window * 1e3:.0f}ms",
                f"{report.throughput_qps:.1f}",
                f"{report.percentile(50) * 1e3:.1f}",
                f"{report.percentile(99) * 1e3:.1f}",
                f"{report.cache_hit_rate:.1%}",
                f"{report.coalescing_factor:.2f}",
                report.batches,
            ]
        )

    save_table(
        "serve_load",
        f"BC-as-a-service load: {QUERIES} mixed queries (seed {SEED}) on a "
        f"scale-{SCALE} R-MAT graph, p={P}",
        [
            "config",
            "clients",
            "max k",
            "window",
            "q/s",
            "p50 ms",
            "p99 ms",
            "cache hits",
            "coalescing",
            "sweeps",
        ],
        rows,
    )

    # an armed window + the cache must amortize: far fewer sweeps than queries
    assert sweep_counts["window 10ms"] < QUERIES / 2, sweep_counts
    # narrowing the sweep width can only increase the sweep count
    assert sweep_counts["narrow sweeps"] >= sweep_counts["window 10ms"]
