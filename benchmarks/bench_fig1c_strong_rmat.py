"""Figure 1(c): strong scaling on R-MAT graphs, weighted vs unweighted.

Paper series (R-MAT S=22, average degree E ∈ {8, 128}):

* CTF-MFBC vs CombBLAS on unweighted graphs — roughly tied at E=8,
  CTF-MFBC clearly ahead at E=128 (dense graphs are MFBC's strength);
* CTF-MFBC on weighted graphs (weights uniform in [1, 100]) — more matrix
  products and denser frontiers cost more than a 2× slowdown vs unweighted.

We run the same design at S = 11 (scaled 2048× down) and price node counts
2→128 with the hybrid model.
"""

from conftest import PAPER_NODE_COUNTS

from repro.analysis import model_run, strong_scaling
from repro.analysis.scaling import trace_combblas, trace_mfbc
from repro.graphs import rmat_graph, with_random_weights
from repro.spgemm import Square2DPolicy

SCALE = 11
DEGREES = [8, 64]  # the paper's E=128 scaled to keep m manageable at S=11
BATCH = 64
MAX_BATCHES = 2


def build_rows():
    rows = []
    for e in DEGREES:
        g = rmat_graph(SCALE, e, seed=4, name=f"rmat_e{e}")
        gw = with_random_weights(g, 1, 100, seed=4)

        for label, pts in [
            (
                f"E={e} CTF-MFBC unweighted",
                strong_scaling(
                    g, PAPER_NODE_COUNTS, batch_sizes=[BATCH], max_batches=MAX_BATCHES
                ),
            ),
            (
                f"E={e} CombBLAS unweighted",
                strong_scaling(
                    g,
                    [4, 16, 64, 144],
                    batch_sizes=[BATCH],
                    tracer=trace_combblas,
                    policy=Square2DPolicy(),
                    max_batches=MAX_BATCHES,
                ),
            ),
            (
                f"E={e} CTF-MFBC weighted",
                strong_scaling(
                    gw, PAPER_NODE_COUNTS, batch_sizes=[BATCH], max_batches=MAX_BATCHES
                ),
            ),
        ]:
            for pt in pts:
                rows.append((label, pt.p, round(pt.mteps_per_node, 2)))
    return rows


def test_fig1c_series(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "fig1c_strong_rmat",
        f"Figure 1(c) reproduction: strong scaling on R-MAT S={SCALE} "
        "graphs (MTEPS/node vs nodes)",
        ["series", "nodes", "MTEPS/node"],
        rows,
    )
    rates = {(label, p): r for label, p, r in rows}
    e_lo, e_hi = DEGREES
    # paper shape 1: the denser R-MAT graph achieves a higher rate
    assert rates[(f"E={e_hi} CTF-MFBC unweighted", 8)] > rates[
        (f"E={e_lo} CTF-MFBC unweighted", 8)
    ]
    # paper shape 2: weights cost around 2× or worse in rate (extra
    # products + denser, recurring frontiers); the paper reports "more than
    # a factor of two", we accept ≥1.8× on the scaled-down graphs
    for e in DEGREES:
        assert (
            rates[(f"E={e} CTF-MFBC weighted", 8)]
            < rates[(f"E={e} CTF-MFBC unweighted", 8)] / 1.8
        )


def test_fig1c_mfbc_beats_combblas_dense(benchmark, save_table):
    """The E-dense headline at one node count, as a standalone check:
    CTF-MFBC's modeled time beats the square-2D restriction at p=64."""
    e = DEGREES[1]

    def run():
        g = rmat_graph(SCALE, e, seed=4)
        stats_m, _ = trace_mfbc(g, BATCH, max_batches=1)
        stats_c, _ = trace_combblas(g, BATCH, max_batches=1)
        t_m = model_run(stats_m, g, 64).seconds
        t_c = model_run(stats_c, g, 64, policy=Square2DPolicy()).seconds
        return t_m, t_c

    t_m, t_c = benchmark.pedantic(run, rounds=1, iterations=1)
    save_table(
        "fig1c_dense_headline",
        f"Figure 1(c) headline: modeled seconds per batch at 64 nodes, "
        f"R-MAT S={SCALE} E={e}",
        ["algorithm", "modeled seconds", "speedup"],
        [
            ("CTF-MFBC", f"{t_m:.4e}", f"{t_c / t_m:.2f}x"),
            ("CombBLAS-style", f"{t_c:.4e}", "1.00x"),
        ],
    )
    assert t_m < t_c
