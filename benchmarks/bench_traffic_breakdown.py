"""Supplementary: where do the words go? (per-category traffic volumes).

The paper's §7.4 observes that communication "is dominated by collective
communication routines" and speculates that "persistence of layout ...
would further reduce communication costs".  The simulator tags every charge
with its operation category, so we can decompose each code's total traffic
into broadcast/reduce/redistribute/replicate/input/gather shares — showing
(a) that collectives dominate for both codes, and (b) how much of MFBC's
traffic is layout management (the paper's future-work target).
"""

from repro.baselines import combblas_bc
from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.graphs import snap_standin
from repro.machine import Machine
from repro.spgemm import Square2DPolicy

P = 16
BATCH = 64
CATEGORIES = ["bcast", "reduce", "replicate", "redistribute", "input", "gather"]


def build_rows():
    g = snap_standin("ork", scale_offset=-4, seed=0)
    rows = []
    shares = {}
    for code, policy, runner in [
        ("CTF-MFBC", None, mfbc),
        ("CombBLAS-style", Square2DPolicy(), combblas_bc),
    ]:
        machine = Machine(P)
        eng = DistributedEngine(machine, policy=policy)
        runner(g, batch_size=BATCH, max_batches=1, engine=eng)
        bd = machine.ledger.traffic_breakdown()
        total = sum(bd.values())
        shares[code] = {c: bd.get(c, 0.0) / total for c in CATEGORIES}
        rows.append(
            [code, f"{total * 8 / 1e6:.2f}"]
            + [f"{shares[code][c] * 100:.1f}%" for c in CATEGORIES]
        )
    return rows, shares


def test_traffic_breakdown(benchmark, save_table):
    rows, shares = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "traffic_breakdown",
        f"Supplementary §7.4: total traffic volume by operation category "
        f"(ork stand-in, p={P}, one batch)",
        ["code", "total MB"] + CATEGORIES,
        rows,
    )
    for code, s in shares.items():
        # §7.4: collective classes dominate over layout management
        collective = s["bcast"] + s["reduce"] + s["replicate"]
        assert collective + s["redistribute"] > 0.5, code
        assert abs(sum(s.values()) - 1.0) < 0.05, code
