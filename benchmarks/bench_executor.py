"""Executor speedup: end-to-end MFBC wall-clock under each local backend.

The tentpole claim of the rank-parallel execution subsystem: on a
multi-core host, fanning the per-rank local multiplies (plus blockwise and
packing work) across cores makes the *simulation itself* faster, while
gathered BC scores and the α-β ledger snapshot stay bit-identical to
serial execution.

Workload: one 32-source batch of MFBC on a scale-14 R-MAT graph (16,384
vertices, ~131K edges) on a simulated 4-rank machine — large enough that
every SpGEMM batch clears the thread backend's dispatch floor.

The bit-identity assertions hold on any host.  The ≥1.5× speedup
assertion only makes sense with real cores under the pool, so it is
gated on ≥4 usable CPUs (CI containers with one core still validate
correctness and record their numbers).
"""

import os
import time

import numpy as np
import pytest

from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.graphs import rmat_graph
from repro.machine import Machine, available_backends, resolve_executor

SCALE = 14
DEGREE = 8
P = 4
BATCH = 32
SPEEDUP_FLOOR = 1.5  # acceptance threshold, ≥4-core hosts only


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_backend(graph, backend: str):
    machine = Machine(P, executor=resolve_executor(backend))
    engine = DistributedEngine(machine)
    t0 = time.perf_counter()
    res = mfbc(graph, batch_size=BATCH, max_batches=1, engine=engine)
    wall = time.perf_counter() - t0
    machine.executor.close()
    return res.scores, machine.ledger.snapshot(), wall


def test_executor_speedup(save_table):
    graph = rmat_graph(scale=SCALE, avg_degree=DEGREE, seed=0)
    cpus = _usable_cpus()
    run_backend(graph, "serial")  # warm-up: page in code paths and allocator
    results = {}
    for backend in available_backends():
        results[backend] = run_backend(graph, backend)

    ref_scores, ref_snap, serial_wall = results["serial"]
    rows = []
    for backend in available_backends():
        scores, snap, wall = results[backend]
        identical = bool(np.array_equal(scores, ref_scores)) and snap == ref_snap
        rows.append(
            [
                backend,
                f"{wall:.3f}",
                f"{serial_wall / wall:.2f}x",
                "yes" if identical else "NO",
            ]
        )
        # the determinism guarantee is unconditional
        assert np.array_equal(scores, ref_scores), backend
        assert snap == ref_snap, backend

    save_table(
        "executor_speedup",
        f"Executor speedup: MFBC scale-{SCALE} R-MAT, p={P}, "
        f"batch={BATCH}, host cpus={cpus}",
        ["backend", "wall s", "speedup", "bit-identical"],
        rows,
    )

    if cpus < 4:
        pytest.skip(
            f"speedup floor needs >=4 usable cores (host has {cpus}); "
            "bit-identity verified"
        )
    best = max(
        serial_wall / results[b][2] for b in available_backends() if b != "serial"
    )
    assert best >= SPEEDUP_FLOOR, (
        f"best parallel backend speedup {best:.2f}x < {SPEEDUP_FLOOR}x"
    )
