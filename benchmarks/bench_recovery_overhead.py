"""Elastic-recovery overhead: redundancy upkeep and the cost of a failure.

Two contracts of `repro.elastic` (see docs/robustness.md):

* **Inert upkeep is cheap.** Arming `Machine(p, elastic="replica")` on a
  fault-free run adds exactly one extra collective per `distribute` (the
  buddy-replica installation, ledger category "redundancy") and nothing on
  the batch hot path.  Both the wall-clock and the modeled critical-path
  overhead of an armed-but-unused policy must stay under 2%, and the
  scores must be bit-identical to an unarmed run.  The zero-upkeep
  `"source"` policy must be modeled-free entirely.

* **A failure is survivable and honestly priced.**  For context the bench
  also runs one injected mid-batch rank failure per redundancy policy and
  reports the recovery's modeled cost (the "recovery" + "redundancy"
  re-arming traffic) and the recovered run's wall-clock — recorded, not
  asserted, since absolute recovery cost scales with the graph.
"""

import time

import numpy as np

from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.graphs import rmat_graph
from repro.machine import Machine

SCALE = 12
DEGREE = 8
P = 4
BATCH = 32
REPS = 5
OVERHEAD_CEILING = 0.02  # inert redundancy: <2% overhead

CRASH_SPEC = "seed:3,crash@20:2"  # one scripted mid-batch rank failure
# (a single batch of this configuration spans ~36 fault steps)


def run_config(graph, elastic, faults="off"):
    """Best-of-REPS wall-clock for one MFBC batch under a redundancy config."""
    best = float("inf")
    scores = snap = machine = None
    for _ in range(REPS):
        machine = Machine(P, faults=faults, elastic=elastic)
        engine = DistributedEngine(machine)
        t0 = time.perf_counter()
        res = mfbc(graph, batch_size=BATCH, max_batches=1, engine=engine)
        best = min(best, time.perf_counter() - t0)
        scores, snap = res.scores, machine.ledger.snapshot()
        machine.executor.close()
    return scores, snap, best, machine


def test_recovery_overhead(save_table):
    graph = rmat_graph(scale=SCALE, avg_degree=DEGREE, seed=0)
    run_config(graph, None)  # warm-up: page in code paths and allocator

    ref_scores, ref_snap, base_wall, _ = run_config(graph, None)
    rows = []
    walls = {}
    modeled = {}
    for label, elastic in [
        ("off", None),
        ("replica", "replica"),
        ("source", "source"),
    ]:
        if elastic is None:
            scores, snap, wall = ref_scores, ref_snap, base_wall
        else:
            scores, snap, wall, _ = run_config(graph, elastic)
        walls[label] = wall
        modeled[label] = snap["time"]
        identical = bool(np.array_equal(scores, ref_scores))
        rows.append(
            [
                label,
                f"{wall:.3f}",
                f"{(wall / base_wall - 1.0) * 100:+.2f}%",
                f"{(snap['time'] / ref_snap['time'] - 1.0) * 100:+.2f}%",
                "yes" if identical else "NO",
            ]
        )
        # redundancy upkeep must never perturb the computed scores
        assert np.array_equal(scores, ref_scores), label

    # failure runs: one injected crash per policy, recovered in-flight
    fail_rows = []
    for policy in ("replica", "source"):
        scores, snap, wall, machine = run_config(
            graph, policy, faults=CRASH_SPEC
        )
        assert len(machine.recoveries) == 1, policy
        rep = machine.recoveries[0]
        cats = machine.ledger.category_words
        fail_rows.append(
            [
                policy,
                f"{rep.p_before}->{rep.p_after}",
                f"{rep.blocks_replica}/{rep.blocks_source}",
                f"{cats.get('recovery', 0.0):.3g}",
                f"{cats.get('redundancy', 0.0):.3g}",
                f"{wall:.3f}",
            ]
        )

    save_table(
        "recovery_overhead",
        f"Elastic redundancy upkeep (fault-free): MFBC scale-{SCALE} R-MAT, "
        f"p={P}, batch={BATCH}, best of {REPS}",
        ["elastic", "wall s", "vs off", "modeled vs off", "bit-identical"],
        rows,
    )
    save_table(
        "recovery_cost",
        f"One injected rank failure, recovered in-flight (spec {CRASH_SPEC})",
        [
            "elastic",
            "grid",
            "blocks replica/source",
            "recovery words",
            "redundancy words",
            "wall s",
        ],
        fail_rows,
    )

    for label in ("replica", "source"):
        overhead = walls[label] / base_wall - 1.0
        assert overhead < OVERHEAD_CEILING, (
            f"inert {label} redundancy added {overhead * 100:.2f}% "
            f"wall-clock (ceiling {OVERHEAD_CEILING * 100:.0f}%)"
        )
        m_overhead = modeled[label] / modeled["off"] - 1.0
        assert m_overhead < OVERHEAD_CEILING, (
            f"inert {label} redundancy added {m_overhead * 100:.2f}% "
            f"modeled time (ceiling {OVERHEAD_CEILING * 100:.0f}%)"
        )
    # "source" retains a handle instead of shipping copies: modeled-free
    assert modeled["source"] == modeled["off"]
