"""Ablation: the batch size nb — MFBC's time/memory tradeoff (§4, §7.1).

The paper: "nb constitutes a tradeoff between the time and the storage
complexity: MFBC takes n/nb iterations but must maintain an n × nb matrix",
and §7.1 reports the best rate over a range of batch sizes, "usually
achieved by the largest batch-size that still fit in memory".

This ablation sweeps nb on a fixed graph, measuring (a) wall-clock of the
sequential engine, (b) the working-set memory of the T/Z matrices, and
(c) the number of generalized products — reproducing the monotone
products-vs-memory exchange.
"""

import numpy as np

from repro import obs
from repro.core import mfbc
from repro.graphs import uniform_random_graph_nm

BATCH_SIZES = [4, 16, 64, 256]
N = 256


def build_rows():
    g = uniform_random_graph_nm(N, 12.0, seed=9)
    rows = []
    for nb in BATCH_SIZES:
        with obs.timed("bench.mfbc", batch_size=nb) as t:
            res = mfbc(g, batch_size=nb)
        wall = t.seconds
        matmuls = res.stats.total_multiplications
        # working set: the T and Z matrices are nb × n with ~3 fields
        working_words = 6 * nb * g.n
        rows.append(
            (
                nb,
                matmuls,
                round(wall, 3),
                working_words,
                round(res.teps(g) / 1e6, 2),
            )
        )
    return rows, g


def test_ablation_batch_size(benchmark, save_table):
    rows, g = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "ablation_batch_size",
        f"Ablation: batch size nb on a uniform graph (n={N}); larger "
        "batches trade memory for fewer products",
        ["nb", "matmuls", "wall (s)", "working words", "MTEPS"],
        rows,
    )
    matmuls = [r[1] for r in rows]
    memory = [r[3] for r in rows]
    # monotone exchange: more memory, fewer products
    assert all(a >= b for a, b in zip(matmuls, matmuls[1:]))
    assert all(a <= b for a, b in zip(memory, memory[1:]))


def test_ablation_batch_correctness(benchmark):
    """All batch sizes produce identical scores (Theorem 4.3 independence)."""

    def run():
        g = uniform_random_graph_nm(128, 8.0, seed=10)
        ref = mfbc(g, batch_size=128).scores
        for nb in (8, 32):
            assert np.allclose(mfbc(g, batch_size=nb).scores, ref, atol=1e-8)
        return True

    assert benchmark.pedantic(run, rounds=1, iterations=1)
