"""Figure 2(a): edge weak scaling on uniform random graphs.

Paper design: keep ``n²/p`` and the adjacency-density percentage
``f = 100·m/n²`` constant while growing p; four configurations pairing
base size n₀ with density f.  Expected shape (§7.3): MFBC sustains its
per-node rate (edge weak scaling is sustainable — communication
O(n²/√(cp)) and per-node work O(mn/p) both grow ∝ √p), and denser
configurations achieve higher absolute rates.
"""

import numpy as np

from repro.analysis import edge_weak_scaling, model_run, mteps_per_node
from repro.analysis.scaling import trace_combblas
from repro.graphs import uniform_random_graph
from repro.spgemm import Square2DPolicy

#: scaled-down analogues of the paper's (n0=131K, f=.5%/. 01%) and
#: (n0=1.3M, f=.05%/.001%) configurations
CONFIGS = [
    ("n0=160 f=5%", 160, 0.05),
    ("n0=160 f=1%", 160, 0.01),
    ("n0=320 f=2%", 320, 0.02),
    ("n0=320 f=0.5%", 320, 0.005),
]
P_VALUES = [2, 8, 32]
#: CombBLAS points use the nearest square processor counts
P_SQUARE = [4, 16, 36]
BATCH = 32
MAX_BATCHES = 2


def build_rows():
    rows = []
    for label, n0, f in CONFIGS:
        pts = edge_weak_scaling(
            n0, f, P_VALUES, batch_size=BATCH, max_batches=MAX_BATCHES
        )
        for pt in pts:
            rows.append(
                (f"{label} MFBC", pt.p, pt.n, pt.m, round(pt.mteps_per_node, 2))
            )
    # the CombBLAS series of the same figure (square grids only)
    for label, n0, f in CONFIGS[:2]:
        for i, p in enumerate(P_SQUARE):
            n = int(round(n0 * np.sqrt(p)))
            g = uniform_random_graph(n, f, seed=100 + i)
            stats, sources = trace_combblas(
                g, BATCH, max_batches=MAX_BATCHES
            )
            # no memory filter: the policy pins the single square-2D plan
            # (CombBLAS does not search alternatives), so a budget could
            # only reject it outright
            run = model_run(stats, g, p, policy=Square2DPolicy())
            rows.append(
                (
                    f"{label} CombBLAS",
                    p,
                    g.n,
                    g.m,
                    round(mteps_per_node(g, run.seconds, p, sources), 2),
                )
            )
    return rows


def test_fig2a_series(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "fig2a_edge_weak",
        "Figure 2(a) reproduction: edge weak scaling on uniform random "
        "graphs (constant n²/p and density f)",
        ["config", "nodes", "n", "m", "MTEPS/node"],
        rows,
    )
    by_cfg = {}
    for label, p, _, _, rate in rows:
        by_cfg.setdefault(label, {})[p] = rate
    # paper shape 1: denser configuration at the same n0 achieves a higher
    # rate at every node count
    for p in P_VALUES:
        assert by_cfg["n0=160 f=5% MFBC"][p] > by_cfg["n0=160 f=1% MFBC"][p]
    # paper shape 2: sustainable scaling — the per-node rate at the largest
    # p stays within a reasonable factor of the smallest-p rate
    for label, _, _ in CONFIGS:
        first = by_cfg[f"{label} MFBC"][P_VALUES[0]]
        last = by_cfg[f"{label} MFBC"][P_VALUES[-1]]
        assert last > first / 8.0
    # paper shape 3: MFBC outperforms the square-2D CombBLAS pricing on the
    # dense configuration at comparable node counts (Fig 2a's gap)
    assert (
        by_cfg["n0=160 f=5% MFBC"][32] > by_cfg["n0=160 f=5% CombBLAS"][36]
    )
