"""Shared infrastructure for the figure/table reproduction benches.

Every bench regenerates one artifact of the paper's evaluation (§7): it
prints the reproduced rows/series to stdout and writes them under
``benchmarks/results/`` so EXPERIMENTS.md can reference stable outputs.

Scale note: the paper ran up to 128 Blue Waters nodes on graphs up to 1.8B
edges; the benches run the same *experiment designs* on the scaled-down
stand-ins (see DESIGN.md) with processor counts priced by the hybrid
performance model (the Theorem-5.1 per-product cost aggregation) or, for
Table 3, the full simulator ledger.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.report import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: processor counts matching the paper's strong-scaling x-axis (Figures 1-2)
PAPER_NODE_COUNTS = [2, 8, 32, 128]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    """Print a reproduced table and persist it under benchmarks/results/."""

    def _save(name: str, title: str, headers, rows) -> str:
        text = f"{title}\n\n" + format_table(headers, rows) + "\n"
        (results_dir / f"{name}.txt").write_text(text)
        print(f"\n{text}")
        return text

    return _save


def pytest_report_header(config):
    return "MFBC paper-reproduction benches (results in benchmarks/results/)"
