"""Supplementary: throughput of the generalized SpGEMM kernel.

Contextualizes the node-local kernel that plays MKL's role in the paper's
stack: measured wall-clock throughput (elementary products per second) for
the three operator families MFBC exercises — plus-times (what scipy's CSR
matmul computes natively, shown as the reference point), tropical min-plus,
and the multpath monoid — across sparsity regimes.  The generalized kernel
pays for its generality (scipy's compiled kernel is faster on plus-times);
the ratio printed here is that generality tax.
"""

import numpy as np
import scipy.sparse

from repro import obs
from repro.algebra import MULTPATH, REAL_PLUS_TIMES, TROPICAL, MatMulSpec
from repro.algebra import bellman_ford_action
from repro.algebra.monoid import MinMonoid, PlusMonoid
from repro.sparse import SpMat, spgemm

N = 2000
DENSITIES = [0.002, 0.01]


def _mats(rng, density, monoid):
    mask = scipy.sparse.random(N, N, density=density, random_state=rng.integers(1 << 30))
    coo = mask.tocoo()
    vals = rng.integers(1, 9, coo.nnz).astype(float)
    a = SpMat(N, N, coo.row.astype(np.int64), coo.col.astype(np.int64), {"w": vals}, monoid)
    return a


def _throughput(a, b, spec, repeats=3, kernel="generic"):
    best = float("inf")
    ops = None
    for _ in range(repeats):
        with obs.timed("bench.kernel_spgemm", spec=spec.name, kernel=kernel) as t:
            res = spgemm(a, b, spec, kernel=kernel)
        best = min(best, t.seconds)
        ops = res.ops
    return (ops / best if best > 0 else 0.0), ops


def build_rows():
    rng = np.random.default_rng(7)
    plus, tropical = PlusMonoid(), MinMonoid()
    bf = MatMulSpec(MULTPATH, bellman_ford_action, "bf")
    rows = []
    for density in DENSITIES:
        a_p = _mats(rng, density, plus)
        b_p = _mats(rng, density, plus)
        spec_p = REAL_PLUS_TIMES.matmul_spec()
        rate_p, ops = _throughput(a_p, b_p, spec_p)
        rate_pf, _ = _throughput(a_p, b_p, spec_p, kernel="fast")

        # scipy reference producing the same canonical deliverable: raw
        # ``sa @ sb`` leaves column indices unsorted, which nothing
        # downstream could consume, so the apples-to-apples recipe sorts
        # and prunes exactly as the dispatch tier's scipy path does
        sa = scipy.sparse.csr_matrix((a_p.vals["w"], (a_p.rows, a_p.cols)), shape=(N, N))
        sb = scipy.sparse.csr_matrix((b_p.vals["w"], (b_p.rows, b_p.cols)), shape=(N, N))
        best_scipy = float("inf")
        for _ in range(3):
            with obs.timed("bench.scipy_spgemm") as t:
                c = (sa @ sb).tocsc().tocsr()
                c.eliminate_zeros()
            best_scipy = min(best_scipy, t.seconds)
        scipy_rate = ops / max(best_scipy, 1e-9)

        a_t = _mats(rng, density, tropical)
        b_t = _mats(rng, density, tropical)
        spec_t = TROPICAL.matmul_spec()
        rate_t, _ = _throughput(a_t, b_t, spec_t)
        rate_tf, _ = _throughput(a_t, b_t, spec_t, kernel="fast")

        f = SpMat(
            64,
            N,
            rng.integers(0, 64, 3000).astype(np.int64),
            rng.integers(0, N, 3000).astype(np.int64),
            MULTPATH.make(rng.integers(1, 9, 3000), np.ones(3000)),
            MULTPATH,
        )
        rate_m, _ = _throughput(f, a_t, bf)
        rate_mf, _ = _throughput(f, a_t, bf, kernel="fast")

        rows.append(
            (
                f"{density:.3%}",
                f"{rate_p / 1e6:.1f}",
                f"{rate_pf / 1e6:.1f}",
                f"{scipy_rate / 1e6:.1f}",
                f"{scipy_rate / max(rate_pf, 1):.2f}x",
                f"{rate_t / 1e6:.1f}",
                f"{rate_tf / 1e6:.1f}",
                f"{rate_m / 1e6:.1f}",
                f"{rate_mf / 1e6:.1f}",
            )
        )
    return rows


def build_check_overhead_rows():
    """REPRO_CHECK=cheap cost on the node-local kernel (best-of-5 timing)."""
    from repro.check import CheckedEngine
    from repro.core.engine import SequentialEngine

    rng = np.random.default_rng(11)
    tropical = MinMonoid()
    spec = TROPICAL.matmul_spec()
    engine = CheckedEngine(SequentialEngine(), "cheap")
    rows = []
    for density in DENSITIES:
        a = _mats(rng, density, tropical)
        b = _mats(rng, density, tropical)

        def best(fn, repeats=5):
            t_best = float("inf")
            for _ in range(repeats):
                with obs.timed("bench.check_overhead") as t:
                    fn()
                t_best = min(t_best, t.seconds)
            return t_best

        raw = best(lambda: spgemm(a, b, spec, kernel="generic"))
        checked = best(lambda: engine.spgemm(a, b, spec))
        overhead = checked / max(raw, 1e-9) - 1.0
        rows.append(
            (
                f"{density:.3%}",
                f"{raw * 1e3:.1f}",
                f"{checked * 1e3:.1f}",
                f"{overhead:+.1%}",
            )
        )
    return rows


def test_check_overhead(benchmark, save_table):
    """Cheap-mode invariant checking must cost ≤10% on the dense-ish case.

    (Disabled checking has *zero* hot-path cost by construction: nothing is
    wrapped — see tests/test_check_engine.py::TestEnablement.)
    """
    rows = benchmark.pedantic(build_check_overhead_rows, rounds=1, iterations=1)
    save_table(
        "check_overhead",
        f"Supplementary: REPRO_CHECK=cheap overhead on the node-local "
        f"generalized-SpGEMM kernel (tropical, n={N}, best of 5)",
        ["density", "unchecked ms", "checked ms", "overhead"],
        rows,
    )
    # the acceptance budget applies at the dense end, where validation cost
    # is amortized over real kernel work (the sparsest case is all fixed
    # overhead and noise)
    overhead_dense = float(rows[-1][-1].rstrip("%").replace("+", "")) / 100.0
    assert overhead_dense <= 0.10, rows


def test_kernel_throughput(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "kernel_throughput",
        f"Supplementary: SpGEMM kernel throughput (Mops/s, n={N}) — generic "
        f"kernel vs the dispatch tier's fast paths vs compiled scipy",
        [
            "density",
            "generic (+,×)",
            "fast (+,×)",
            "scipy (+,×)",
            "scipy/fast",
            "generic min-plus",
            "fast min-plus",
            "generic multpath",
            "fast multpath",
        ],
        rows,
    )
    # every kernel family must sustain ≥ 1 Mops/s
    for _, kp, kpf, _, _, kt, ktf, km, kmf in rows:
        assert all(float(x) > 1.0 for x in (kp, kpf, kt, ktf, km, kmf))
    # ratchet: on the dense point the dispatched plus-times path must land
    # within 2x of raw compiled scipy (it *is* scipy plus CSR conversion)
    scipy_over_fast = float(rows[-1][4].rstrip("x"))
    assert scipy_over_fast <= 2.0, rows
    # and the fast paths must never lose to the generic kernel they shadow
    for _, kp, kpf, _, _, kt, ktf, km, kmf in rows:
        assert float(kpf) >= 0.8 * float(kp)
        assert float(ktf) >= 0.8 * float(kt)
        assert float(kmf) >= 0.8 * float(km)
