"""Table 3: critical-path communication costs for a single source batch.

Paper methodology (§7.4): profile the collectives of one batch on 4096
cores, max-merge critical-path costs per collective, and report the words
(W), messages (S), communication time, and total time for CTF-MFBC vs
CombBLAS on Orkut, LiveJournal, and Patents.

This bench runs the *full simulator* (not the hybrid model): every
collective the distributed engines issue is charged with its measured
payload, and the ledger implements exactly the paper's max-merge rule.
Expected shape:

* CTF-MFBC uses clearly fewer messages (S) than the CombBLAS-style code on
  every graph (the paper's most consistent observation);
* on the dense Orkut graph CTF-MFBC also moves fewer words;
* on the high-diameter Patents graph the CombBLAS-style code wins on total
  time (its stored-levels back-propagation does less work there — the
  paper reports the same reversal).
"""

import numpy as np

from repro.baselines import combblas_bc
from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.graphs import snap_standin
from repro.machine import Machine
from repro.spgemm import Square2DPolicy

GRAPH_IDS = ["ork", "ljm", "cit"]
OFFSETS = {"ork": -4, "ljm": -4, "cit": -4}
P = 16  # simulated ranks (the paper used 4096 cores = 128 nodes)
BATCH = 64  # the paper's batch of 512 starting vertices, scaled


def run_one(gid: str, code: str):
    g = snap_standin(gid, scale_offset=OFFSETS[gid], seed=0)
    machine = Machine(P)
    if code == "CTF-MFBC":
        eng = DistributedEngine(machine)
        res = mfbc(g, batch_size=BATCH, max_batches=1, engine=eng)
        scores = res.scores
    else:
        eng = DistributedEngine(machine, policy=Square2DPolicy())
        res = combblas_bc(g, batch_size=BATCH, max_batches=1, engine=eng)
        scores = res.scores
    led = machine.ledger.snapshot()
    return g, scores, led


def build_rows():
    rows = []
    ledgers = {}
    for gid in GRAPH_IDS:
        ref = None
        for code in ["CombBLAS-style", "CTF-MFBC"]:
            g, scores, led = run_one(gid, code)
            if ref is None:
                ref = scores
            else:
                assert np.allclose(scores, ref, atol=1e-6), (gid, code)
            ledgers[(gid, code)] = led
            rows.append(
                (
                    gid,
                    code,
                    f"{led['words'] * 8 / 1e9:.5f}",
                    f"{led['msgs'] / 1e3:.2f}K",
                    f"{led['comm_time']:.5f}",
                    f"{led['time']:.5f}",
                )
            )
    return rows, ledgers


def test_table3(benchmark, save_table):
    rows, ledgers = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "table3_critical_path",
        f"Table 3 reproduction: critical-path costs on {P} simulated ranks, "
        f"one batch of {BATCH} sources",
        ["graph", "code", "W (GB)", "S (#msgs)", "comm (sec)", "total (sec)"],
        rows,
    )
    # paper shape: CTF-MFBC needs fewer messages on every graph
    for gid in GRAPH_IDS:
        assert (
            ledgers[(gid, "CTF-MFBC")]["msgs"]
            < ledgers[(gid, "CombBLAS-style")]["msgs"]
        ), gid
    # paper shape: fewer words on the dense Orkut graph
    assert (
        ledgers[("ork", "CTF-MFBC")]["words"]
        <= ledgers[("ork", "CombBLAS-style")]["words"] * 1.5
    )
