"""Ablation: the §5.2 load-balance assumption (balls into bins).

The paper's blocks "are chosen obliviously of the matrix structure"; for
this to be load balanced, "randomizing the row and column order implies
that the number of nonzeros of each such block is proportional to the block
size".  This ablation measures exactly that on a skewed R-MAT graph:

* block nonzero imbalance (max/mean over a 4×4 blocking) with the generator
  order versus after random vertex relabeling — relabeling should collapse
  the imbalance toward 1;
* the downstream effect: per-rank compute imbalance of a full distributed
  MFBC batch under both orders.

Note the R-MAT generator already randomizes labels internally (as the paper
prescribes); for the "unbalanced" arm we deliberately sort vertices by
degree, reconstructing the adversarial structured order.
"""

import numpy as np

from repro.core import mfbc
from repro.dist import DistributedEngine, DistMat
from repro.graphs import rmat_graph
from repro.graphs.preprocess import randomize_vertex_order, relabel
from repro.machine import Machine

P = 16
GRID = 4


def degree_sorted(g):
    """Adversarial structured order: hubs first."""
    order = np.argsort(g.degrees())[::-1]
    new_of_old = np.empty(g.n, dtype=np.int64)
    new_of_old[order] = np.arange(g.n)
    return relabel(g, new_of_old, g.n)


def block_imbalance(g) -> float:
    machine = Machine(P)
    home = np.arange(P).reshape(GRID, GRID)
    d = DistMat.distribute(g.adjacency(), machine, home, charge=False)
    nnzs = np.array([[blk.nnz for blk in row] for row in d.blocks], dtype=float)
    return float(nnzs.max() / max(nnzs.mean(), 1e-12))


def compute_imbalance(g) -> float:
    machine = Machine(P)
    mfbc(g, batch_size=32, max_batches=1, engine=DistributedEngine(machine))
    return machine.ledger.load_imbalance()


def build_rows():
    base = rmat_graph(11, 8, seed=21)
    arms = {
        "degree-sorted (adversarial)": degree_sorted(base),
        "randomized labels (§5.2)": randomize_vertex_order(base, seed=3),
    }
    rows = []
    for label, g in arms.items():
        rows.append(
            (
                label,
                round(block_imbalance(g), 2),
                round(compute_imbalance(g), 2),
            )
        )
    return rows


def test_ablation_load_balance(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "ablation_load_balance",
        f"Ablation §5.2: block-nnz and per-rank compute imbalance "
        f"(max/mean) on a {GRID}x{GRID} blocking of a skewed R-MAT graph",
        ["vertex order", "block nnz imbalance", "compute imbalance"],
        rows,
    )
    by = {r[0]: r for r in rows}
    sorted_blk = by["degree-sorted (adversarial)"][1]
    random_blk = by["randomized labels (§5.2)"][1]
    # randomization collapses the block imbalance substantially...
    assert random_blk < sorted_blk / 2
    # ...and lands close to the proportional-to-area ideal
    assert random_blk < 1.5
