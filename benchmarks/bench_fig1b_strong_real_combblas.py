"""Figure 1(b): strong scaling of CombBLAS-style BC on the real stand-ins.

Paper series: MTEPS/node vs node count for Orkut, LiveJournal, Patents under
CombBLAS (no Friendster — the paper could not run it with CombBLAS at all).
Expected shape (§7.2):

* CombBLAS is competitive on LiveJournal and Patents;
* on the dense Orkut graph CTF-MFBC's advantage is largest (up to 7.6× in
  the paper) — checked in this bench by comparing against the Figure 1(a)
  pricing of the same graphs.
"""


from repro.analysis import strong_scaling
from repro.analysis.scaling import trace_combblas
from repro.baselines import combblas_bc
from repro.graphs import snap_standin
from repro.spgemm import Square2DPolicy

GRAPH_IDS = ["ork", "ljm", "cit"]
OFFSETS = {"ork": -3, "ljm": -3, "cit": -3}
BATCH_SIZE = 64

#: CombBLAS requires square process grids: the nearest squares to the
#: paper's node counts
SQUARE_NODE_COUNTS = [4, 16, 64, 144]


def build_rows():
    rows = []
    for gid in GRAPH_IDS:
        g = snap_standin(gid, scale_offset=OFFSETS[gid], seed=0)
        pts = strong_scaling(
            g,
            SQUARE_NODE_COUNTS,
            batch_sizes=[BATCH_SIZE],
            tracer=trace_combblas,
            policy=Square2DPolicy(),
            max_batches=2,
        )
        for pt in pts:
            rows.append((gid, g.n, g.m, pt.p, round(pt.mteps_per_node, 2)))
    return rows


def test_fig1b_series(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "fig1b_strong_real_combblas",
        "Figure 1(b) reproduction: CombBLAS-style strong scaling on "
        "real-graph stand-ins (MTEPS/node vs nodes)",
        ["graph", "n", "m", "nodes", "MTEPS/node"],
        rows,
    )
    by_graph = {}
    for gid, _, _, p, rate in rows:
        by_graph.setdefault(gid, {})[p] = rate
    for gid in GRAPH_IDS:
        assert by_graph[gid][4] > 0

    # cross-figure check (the paper's headline): on the dense Orkut graph
    # MFBC's model-searched execution beats the square-2D-restricted
    # CombBLAS pricing of the same trace.
    from repro.analysis import model_run
    from repro.analysis.scaling import trace_mfbc

    g = snap_standin("ork", scale_offset=OFFSETS["ork"], seed=0)
    stats_m, _ = trace_mfbc(g, BATCH_SIZE, max_batches=2)
    stats_c, _ = trace_combblas(g, BATCH_SIZE, max_batches=2)
    t_mfbc = model_run(stats_m, g, 64).seconds
    t_comb = model_run(stats_c, g, 64, policy=Square2DPolicy()).seconds
    assert t_mfbc < t_comb


def test_fig1b_kernel(benchmark):
    """Timed kernel: one CombBLAS-style batch on the LiveJournal stand-in."""
    g = snap_standin("ljm", scale_offset=-4, seed=0)
    benchmark.pedantic(
        lambda: combblas_bc(g, batch_size=32, max_batches=1),
        rounds=3,
        iterations=1,
    )
