"""Table 2: structural properties of the real-world graphs.

Regenerates the paper's graph-property table for the synthetic stand-ins and
prints the original SNAP numbers alongside, so the preserved *relative*
structure (directedness, density ordering, diameter regime) is auditable.
"""

from repro.graphs import snap_standin
from repro.graphs.realworld import SNAP_STANDINS

OFFSETS = {"frd": -5, "ork": -4, "ljm": -4, "cit": -3}


def build_rows():
    rows = []
    for gid, spec in SNAP_STANDINS.items():
        g = snap_standin(gid, scale_offset=OFFSETS[gid], seed=0)
        d = g.diameter_hops()
        deff = g.effective_diameter()
        rows.append(
            (
                gid,
                spec.title,
                "directed" if g.directed else "undirected",
                g.n,
                g.m,
                # density = adjacency nonzeros per vertex (counts both
                # orientations for undirected graphs, like the paper's m)
                round(g.nnz_adjacency / g.n, 1),
                d,
                round(deff, 1),
                f"{spec.paper_n:.2g}",
                f"{spec.paper_m:.2g}",
                spec.paper_d,
                spec.paper_deff,
            )
        )
    return rows


def test_table2(benchmark, save_table):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    save_table(
        "table2_graph_stats",
        "Table 2 reproduction: stand-in graph properties "
        "(paper's originals on the right)",
        [
            "ID",
            "name",
            "directed?",
            "n",
            "m",
            "nnz(A)/n",
            "d",
            "d90%",
            "paper n",
            "paper m",
            "paper d",
            "paper d90%",
        ],
        rows,
    )
    props = {r[0]: r for r in rows}
    # directedness matches Table 2
    assert props["frd"][2] == "undirected" and props["ork"][2] == "undirected"
    assert props["ljm"][2] == "directed" and props["cit"][2] == "directed"
    # density ordering: ork > ljm > cit by adjacency nonzeros per vertex
    dens = {gid: props[gid][5] for gid in props}
    assert dens["ork"] > dens["ljm"] > dens["cit"]
    # diameter regime: patents largest, social nets small (as in Table 2)
    assert props["cit"][6] > props["ork"][6]
    assert props["cit"][6] > props["ljm"][6]
