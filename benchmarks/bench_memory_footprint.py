"""Peak-memory ratchet: the seed workload's footprint must not creep up.

The machine tracks every block allocation in modeled words (deterministic —
no RSS sampling), so the per-rank high-water mark of the seed MFBC workload
is an exact, reproducible number.  This bench ratchets it against the
committed ceiling in ``benchmarks/results/memory_footprint.json``: a change
that inflates the resting or transient footprint past the ceiling fails CI.
Lower the recorded peak when an optimization lands; never raise the ceiling
without understanding what grew.

The second half proves the ISSUE's acceptance bar end-to-end: the same
workload under a budget well below the unpressured peak completes
**bit-identically** through the memory ladder (relief eviction to the
spill store, batch shrinking), with its tracked peak under the budget and
spill traffic visible on the ledger.
"""

import json
from pathlib import Path

import numpy as np

from repro.core import mfbc
from repro.dist import DistributedEngine
from repro.graphs import rmat_graph
from repro.machine import Machine

RATCHET = Path(__file__).parent / "results" / "memory_footprint.json"

SCALE = 7
DEGREE = 8
SEED = 1
P = 4
BATCH = 64
#: fraction of the unpressured peak the pressured leg must fit inside
PRESSURE = 0.6


def _run(budget, spill_dir=None):
    g = rmat_graph(scale=SCALE, avg_degree=DEGREE, seed=SEED)
    machine = Machine(
        P, faults="off", elastic="off",
        memory_words=budget, spill_dir=spill_dir,
    )
    scores = mfbc(g, batch_size=BATCH, engine=DistributedEngine(machine)).scores
    return scores, machine


def test_memory_footprint(tmp_path, save_table):
    ratchet = json.loads(RATCHET.read_text())
    ceiling = int(ratchet["ceiling_words"])

    # -- unpressured: the tracked peak must stay under the committed ceiling
    ref, unpressured = _run(budget=1 << 40)
    peak = unpressured.memory_peak()
    assert peak <= ceiling, (
        f"per-rank peak grew to {peak} words (ceiling {ceiling}); "
        f"committed baseline was {ratchet['peak_words']}"
    )

    # -- pressured: well under the peak, bit-identical via the spill ladder
    budget = int(peak * PRESSURE)
    scores, pressured = _run(budget=budget, spill_dir=str(tmp_path))
    np.testing.assert_array_equal(scores, ref)
    assert pressured.memory_peak() <= budget
    snap = pressured.memory.snapshot()
    assert snap["reliefs"] > 0, "budget under peak but no relief fired"
    spill_words = pressured.ledger.category_words.get("spill", 0.0)
    assert spill_words > 0, "relief fired but no spill traffic on the ledger"

    save_table(
        "memory_footprint",
        f"Peak tracked memory, R-MAT scale {SCALE} deg {DEGREE}, "
        f"p={P}, batch {BATCH} (words/rank)",
        ["run", "budget", "peak", "reliefs", "spilled blocks", "spill words"],
        [
            ["unpressured", "-", peak, 0, 0, 0],
            [
                "pressured",
                budget,
                pressured.memory_peak(),
                snap["reliefs"],
                snap.get("spilled_blocks", 0),
                int(spill_words),
            ],
        ],
    )
