"""Adaptive (ε, δ) sampling: accuracy against exact BC and modeled cost.

Two legs, two claims:

* **Accuracy** (seed graph, n=200): for each ε the adaptive run converges
  and its max per-vertex error against exact Brandes is within ε — in
  practice an order of magnitude under it, since the empirical-Bernstein
  certificate is conservative.
* **Cost** (n=2048, p=16): a converged ε=0.1 run prices at **<50%** of
  exact MFBC's modeled α-β critical-path time (the ISSUE's acceptance
  bar).  Exact cost is extrapolated from 4 measured batches — per-batch
  modeled cost is near-uniform across the run, and timing all 32 batches
  would only tighten a number that already clears the bar by 2x — and the
  extrapolation is labeled as such in the table.

The sampler's advantage grows with n: the Bernstein sample bound is
O(log n) while exact MFBC is Θ(n) sweeps, so the n=2048 ratio here
(~0.29) understates what the paper-scale graphs would see.
"""

import math
import time

import numpy as np

from repro.baselines import brandes_bc
from repro.core import mfbc
from repro.core.approx import adaptive_bc
from repro.dist import DistributedEngine
from repro.graphs import uniform_random_graph_nm
from repro.machine import Machine

DELTA = 0.1
EPSILONS = [0.3, 0.2, 0.1]

COST_N = 2048
COST_DEGREE = 8.0
COST_P = 16
COST_BATCH = 64
COST_EPSILON = 0.1
COST_MEASURED_BATCHES = 4
COST_CEILING = 0.5  # adaptive must price under 50% of exact's modeled cost


def _quiet_engine(p):
    return DistributedEngine(Machine(p, faults="off", elastic="off"))


def test_accuracy_vs_exact_brandes(save_table):
    graph = uniform_random_graph_nm(200, 4.0, seed=7)
    denom = (graph.n - 1) * (graph.n - 2)
    exact = brandes_bc(graph) / denom

    rows = []
    hit_target = 0
    for epsilon in EPSILONS:
        t0 = time.perf_counter()
        res = adaptive_bc(graph, epsilon=epsilon, delta=DELTA, seed=0)
        wall = time.perf_counter() - t0
        err = float(np.max(np.abs(res.normalized_scores - exact)))
        within = res.converged and err <= epsilon
        hit_target += within
        rows.append(
            [
                f"{epsilon:g}",
                res.samples_used,
                res.batches,
                "yes" if res.converged else "NO",
                f"{res.width:.4f}",
                f"{err:.4f}",
                "yes" if within else "NO",
                f"{wall:.2f}",
            ]
        )

    save_table(
        "approx_accuracy",
        f"Adaptive (ε, δ={DELTA}) sampling vs exact Brandes: "
        f"uniform n={graph.n}, seed 7",
        ["epsilon", "samples", "batches", "converged", "cert width",
         "max error", "err <= eps", "wall s"],
        rows,
    )
    # the acceptance bar: the target ε is hit on at least one seed graph —
    # here it is hit at every ε
    assert hit_target == len(EPSILONS)


def test_modeled_cost_under_half_of_exact(save_table):
    graph = uniform_random_graph_nm(COST_N, COST_DEGREE, seed=11)
    total_batches = math.ceil(graph.n / COST_BATCH)

    m_exact = Machine(COST_P, faults="off", elastic="off")
    mfbc(
        graph,
        batch_size=COST_BATCH,
        max_batches=COST_MEASURED_BATCHES,
        engine=DistributedEngine(m_exact),
    )
    measured = m_exact.ledger.critical_time()
    exact_cost = measured * total_batches / COST_MEASURED_BATCHES

    m_adaptive = Machine(COST_P, faults="off", elastic="off")
    res = adaptive_bc(
        graph,
        epsilon=COST_EPSILON,
        delta=DELTA,
        seed=0,
        batch_size=COST_BATCH,
        engine=DistributedEngine(m_adaptive),
    )
    adaptive_cost = m_adaptive.ledger.critical_time()
    ratio = adaptive_cost / exact_cost

    save_table(
        "approx_cost",
        f"Modeled α-β cost, uniform n={COST_N} deg={COST_DEGREE:g} p={COST_P}: "
        f"adaptive (ε={COST_EPSILON}, δ={DELTA}) vs exact MFBC "
        f"(exact extrapolated from {COST_MEASURED_BATCHES}/{total_batches} "
        f"measured batches)",
        ["configuration", "sweep sources", "batches", "modeled time s",
         "vs exact"],
        [
            [
                "exact MFBC (extrapolated)",
                graph.n,
                total_batches,
                f"{exact_cost:.4g}",
                "100%",
            ],
            [
                f"adaptive eps={COST_EPSILON}",
                res.samples_used,
                res.batches,
                f"{adaptive_cost:.4g}",
                f"{ratio * 100:.1f}%",
            ],
        ],
    )
    assert res.converged, "adaptive run must certify its ε target"
    assert ratio < COST_CEILING, (
        f"adaptive modeled cost is {ratio * 100:.1f}% of exact "
        f"(ceiling {COST_CEILING * 100:.0f}%)"
    )
